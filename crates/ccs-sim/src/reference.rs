//! The retained reference cycle-stepper.
//!
//! This is the seed implementation of the simulator, kept verbatim as the
//! executable specification of the machine model: every micro-step of
//! every core goes through the event heap (one push + one pop per step),
//! stores broadcast their invalidation to every other private L1, and the
//! caches use the seed's storage ([`RefCache`]: one `Vec` of ways per set,
//! division-based set indexing) rather than the optimised flat layout in
//! `ccs-cache`.
//!
//! Traces reach this module through a *thin adapter*: the computation's
//! pooled trace arena is materialised back into one owned
//! [`TaskTrace`](ccs_dag::TaskTrace) per task before the simulation starts
//! (see [`simulate_reference`]), so the loop below still reads the seed's
//! `Vec<TraceOp>` representation verbatim and stays independent of the
//! pooled layout it is checking.
//!
//! The production engine (`machine::event_driven`) must report *identical*
//! metrics — same cycles, same hit/miss/eviction counts, same bandwidth
//! utilisation — for every computation, configuration and scheduler.  That
//! equivalence is pinned by unit tests in `machine.rs` and by the property
//! tests in `tests/engine_equivalence.rs`; select this engine explicitly
//! with [`SimEngine::Reference`](crate::SimEngine) (CLI: `--engine
//! reference`).  Because the whole seed stack is retained, the
//! `speedup_vs_reference` the bench harness records measures the full
//! effect of the event-driven rework (inline batching + ownership
//! directory + cache layout) against the seed.
//!
//! Do not optimise this module: its value is being the simple, obviously-
//! correct implementation the fast engine is checked against.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ccs_cache::{AccessOutcome, CacheConfig, CacheStats, MainMemory};
use ccs_dag::{AccessKind, Computation, Dag, TaskId};
use ccs_sched::Scheduler;

use crate::config::CmpConfig;
use crate::metrics::SimResult;

/// The seed's set-associative cache, retained verbatim: per-set `Vec`s of
/// ways, true-LRU via a monotonic clock, write-back/write-allocate.  Hit,
/// miss, eviction and write-back decisions are definitionally identical to
/// [`ccs_cache::SetAssocCache`] (pinned by the engine-equivalence tests).
struct RefCache {
    config: CacheConfig,
    sets: Vec<Vec<RefWay>>,
    stats: CacheStats,
    clock: u64,
}

#[derive(Clone, Copy)]
struct RefWay {
    line: u64,
    dirty: bool,
    /// Monotonic timestamp of the last access; smallest = LRU victim.
    last_used: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let sets =
            vec![Vec::with_capacity(config.associativity as usize); config.num_sets() as usize];
        RefCache {
            config,
            sets,
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn access_line(&mut self, line: u64, kind: AccessKind) -> AccessOutcome {
        debug_assert_eq!(
            line % self.config.line_size,
            0,
            "address must be line-aligned"
        );
        self.clock += 1;
        let clock = self.clock;
        let is_write = kind.is_write();
        let set_idx = self.config.set_of(line) as usize;
        let assoc = self.config.associativity as usize;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_used = clock;
            way.dirty |= is_write;
            self.stats.record(true, is_write);
            return AccessOutcome {
                hit: true,
                evicted: None,
                writeback: false,
            };
        }

        // Miss: allocate, evicting the LRU way if the set is full.
        self.stats.record(false, is_write);
        let mut outcome = AccessOutcome {
            hit: false,
            evicted: None,
            writeback: false,
        };
        if set.len() == assoc {
            let victim_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = set.swap_remove(victim_idx);
            self.stats.record_eviction(victim.dirty);
            outcome.evicted = Some(victim.line);
            outcome.writeback = victim.dirty;
        }
        set.push(RefWay {
            line,
            dirty: is_write,
            last_used: clock,
        });
        outcome
    }

    fn fill_line(&mut self, line: u64, dirty: bool) {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.config.set_of(line) as usize;
        let assoc = self.config.associativity as usize;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_used = clock;
            way.dirty |= dirty;
            return;
        }
        if set.len() == assoc {
            let victim_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = set.swap_remove(victim_idx);
            self.stats.record_eviction(victim.dirty);
        }
        set.push(RefWay {
            line,
            dirty,
            last_used: clock,
        });
    }

    fn invalidate_line(&mut self, line: u64) -> bool {
        let set_idx = self.config.set_of(line) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.line == line) {
            let way = set.swap_remove(pos);
            way.dirty
        } else {
            false
        }
    }
}

/// What a core is currently doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Ready to start (or continue) the current op of the current task.
    NextOp,
    /// An L1 miss is probing the (cluster's) L2; resolves at the core's
    /// `time`.
    L2Probe { line: u64, is_write: bool },
    /// An L2 miss is probing the shared L3 (three-level hierarchies only);
    /// resolves at the core's `time`.
    L3Probe { line: u64, is_write: bool },
    /// A last-level miss is waiting for main memory; data arrives at the
    /// core's `time`.
    MemFill { line: u64, is_write: bool },
}

#[derive(Clone, Debug)]
struct Core {
    task: Option<TaskId>,
    /// Index of the current trace op.
    op_idx: usize,
    /// Index of the current line within the current op (for references that
    /// straddle cache lines).
    line_idx: u64,
    phase: Phase,
    /// The next simulation time this core needs attention.
    time: u64,
    /// When the current task was dispatched.
    task_started: u64,
    busy: u64,
}

impl Core {
    fn new() -> Self {
        Core {
            task: None,
            op_idx: 0,
            line_idx: 0,
            phase: Phase::NextOp,
            time: 0,
            task_started: 0,
            busy: 0,
        }
    }

    /// Advance past the line just serviced, moving to the next line of the
    /// same reference or to the next op.
    fn advance_line(&mut self, trace: &ccs_dag::TaskTrace, line_size: u64) {
        let op = &trace.ops()[self.op_idx];
        let first_line = op.mem.addr & !(line_size - 1);
        let last_line = (op.mem.addr + op.mem.size.max(1) as u64 - 1) & !(line_size - 1);
        let num_lines = (last_line - first_line) / line_size + 1;
        self.line_idx += 1;
        if self.line_idx >= num_lines {
            self.line_idx = 0;
            self.op_idx += 1;
        }
    }
}

/// Run `comp` (with its pre-built `dag`) through the reference cycle-stepper.
pub(crate) fn simulate_reference(
    comp: &Computation,
    dag: &Dag,
    config: &CmpConfig,
    sched: &mut dyn Scheduler,
) -> SimResult {
    let p = config.num_cores;
    assert!(p > 0, "need at least one core");
    let n = comp.num_tasks();
    let line_size = config.l2.line_size;
    assert_eq!(
        config.l1.line_size, line_size,
        "L1 and L2 must use the same line size"
    );

    let clusters = config.clusters;
    assert!(
        clusters >= 1 && p.is_multiple_of(clusters),
        "{p} cores cannot be split into {clusters} equal clusters"
    );
    let cores_per_cluster = p / clusters;

    let mut l1s: Vec<RefCache> = (0..p).map(|_| RefCache::new(config.l1)).collect();
    // One L2 per cluster (`clusters == 1` is the paper's single shared L2);
    // a core probes the L2 of cluster `core_id / cores_per_cluster`.
    let mut l2s: Vec<RefCache> = (0..clusters).map(|_| RefCache::new(config.l2)).collect();
    // The optional chip-wide L3 sits between the L2s and memory.
    let mut l3 = config.l3.map(RefCache::new);
    if let Some(l3_cfg) = &config.l3 {
        assert_eq!(
            l3_cfg.line_size, line_size,
            "L3 must use the same line size as the L2"
        );
    }
    let mut memory = MainMemory::new(config.memory);

    // Thin adapter over the pooled trace arena: materialise each task's
    // trace once, up front, so the cycle-stepper below keeps reading the
    // seed's per-task `TaskTrace` form unmodified.
    let traces: Vec<ccs_dag::TaskTrace> = (0..n as u32)
        .map(|t| comp.trace(TaskId(t)).to_task_trace())
        .collect();

    let mut cores: Vec<Core> = (0..p).map(|_| Core::new()).collect();
    let mut in_deg: Vec<u32> = (0..n as u32)
        .map(|t| dag.in_degree(TaskId(t)) as u32)
        .collect();
    let mut completed = 0usize;

    sched.init(dag, p);
    // Roots and newly-ready siblings are enabled in *reverse* sequential
    // order so deque-based schedulers, which push each enabled task on top,
    // end up with the earliest-sequential task on top (the order a work-first
    // fork-join runtime reaches them).
    let mut roots: Vec<TaskId> = dag.sources();
    roots.sort_by_key(|t| std::cmp::Reverse(dag.seq_rank(*t)));
    for r in roots {
        sched.task_enabled(r, None);
    }

    // Cores with work in flight, keyed by (time, core id) for deterministic
    // ordering.  Idle cores are tracked separately and woken on completions.
    let mut active: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut idle: Vec<usize> = Vec::new();

    // Dispatch as much ready work as possible at `now`, preferring `first`.
    fn dispatch(
        now: u64,
        first: Option<usize>,
        sched: &mut dyn Scheduler,
        cores: &mut [Core],
        idle: &mut Vec<usize>,
        active: &mut BinaryHeap<Reverse<(u64, usize)>>,
    ) {
        idle.sort_unstable();
        if let Some(f) = first {
            if let Some(pos) = idle.iter().position(|&c| c == f) {
                idle.remove(pos);
                idle.insert(0, f);
            }
        }
        let mut i = 0;
        while i < idle.len() {
            if sched.ready_count() == 0 {
                break;
            }
            let core_id = idle[i];
            match sched.next_task(core_id) {
                Some(task) => {
                    idle.remove(i);
                    let core = &mut cores[core_id];
                    core.task = Some(task);
                    core.op_idx = 0;
                    core.line_idx = 0;
                    core.phase = Phase::NextOp;
                    core.time = now;
                    core.task_started = now;
                    active.push(Reverse((now, core_id)));
                }
                None => {
                    i += 1;
                }
            }
        }
    }

    // Initial dispatch at time 0.
    idle.extend(0..p);
    dispatch(0, None, sched, &mut cores, &mut idle, &mut active);

    let mut makespan = 0u64;

    while completed < n {
        let Reverse((now, core_id)) = active
            .pop()
            .expect("simulator deadlock: tasks remain but no core is active");
        makespan = makespan.max(now);
        let core = &mut cores[core_id];
        debug_assert_eq!(core.time, now);
        let task_id = core.task.expect("active core without a task");
        let trace = &traces[task_id.index()];

        match core.phase {
            Phase::NextOp => {
                if core.op_idx < trace.ops().len() {
                    let op = &trace.ops()[core.op_idx];
                    if core.line_idx == 0 {
                        // Charge the compute preceding this reference once.
                        core.time += op.pre_compute as u64;
                    }
                    let first_line = op.mem.addr & !(line_size - 1);
                    let last_line =
                        (op.mem.addr + op.mem.size.max(1) as u64 - 1) & !(line_size - 1);
                    let num_lines = (last_line - first_line) / line_size + 1;
                    let line = first_line + core.line_idx * line_size;
                    let is_write = op.mem.kind.is_write();
                    // L1 probe (always pays the L1 hit latency).
                    core.time += config.l1.hit_latency;
                    let l1_hit = l1s[core_id].access_line(line, op.mem.kind).hit;
                    if is_write {
                        // Write-invalidate the line in every other L1.
                        for (other, l1) in l1s.iter_mut().enumerate() {
                            if other != core_id {
                                l1.invalidate_line(line);
                            }
                        }
                    }
                    if l1_hit {
                        core.line_idx += 1;
                        if core.line_idx == num_lines {
                            core.line_idx = 0;
                            core.op_idx += 1;
                        }
                        // stay in NextOp
                    } else {
                        core.phase = Phase::L2Probe { line, is_write };
                        core.time += config.l2.hit_latency;
                    }
                    active.push(Reverse((core.time, core_id)));
                } else {
                    // Task body finished: trailing compute, then completion.
                    core.time += trace.post_compute();
                    let finish = core.time;
                    makespan = makespan.max(finish);
                    core.busy += finish - core.task_started;
                    core.task = None;
                    completed += 1;
                    // Enable newly ready successors in reverse sequential
                    // order (see the root-enabling comment above).
                    let mut newly: Vec<TaskId> = Vec::new();
                    for &s in dag.successors(task_id) {
                        in_deg[s.index()] -= 1;
                        if in_deg[s.index()] == 0 {
                            newly.push(s);
                        }
                    }
                    newly.sort_by_key(|t| std::cmp::Reverse(dag.seq_rank(*t)));
                    for s in newly {
                        sched.task_enabled(s, Some(core_id));
                    }
                    idle.push(core_id);
                    dispatch(
                        finish,
                        Some(core_id),
                        sched,
                        &mut cores,
                        &mut idle,
                        &mut active,
                    );
                }
            }
            Phase::L2Probe { line, is_write } => {
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let hit = l2s[core_id / cores_per_cluster].access_line(line, kind).hit;
                if hit {
                    l1s[core_id].fill_line(line, is_write);
                    core.advance_line(trace, line_size);
                    core.phase = Phase::NextOp;
                    active.push(Reverse((core.time, core_id)));
                } else if let Some(l3_cfg) = &config.l3 {
                    core.time += l3_cfg.hit_latency;
                    core.phase = Phase::L3Probe { line, is_write };
                    active.push(Reverse((core.time, core_id)));
                } else {
                    let done = memory.request(core.time);
                    core.time = done;
                    core.phase = Phase::MemFill { line, is_write };
                    active.push(Reverse((core.time, core_id)));
                }
            }
            Phase::L3Probe { line, is_write } => {
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let hit = l3
                    .as_mut()
                    .expect("L3 probe without an L3")
                    .access_line(line, kind)
                    .hit;
                if hit {
                    l1s[core_id].fill_line(line, is_write);
                    core.advance_line(trace, line_size);
                    core.phase = Phase::NextOp;
                    active.push(Reverse((core.time, core_id)));
                } else {
                    let done = memory.request(core.time);
                    core.time = done;
                    core.phase = Phase::MemFill { line, is_write };
                    active.push(Reverse((core.time, core_id)));
                }
            }
            Phase::MemFill { line, is_write } => {
                // Data returned: fill the private L1 (the shared L2 was
                // already allocated when the miss was detected).
                l1s[core_id].fill_line(line, is_write);
                core.advance_line(trace, line_size);
                core.phase = Phase::NextOp;
                active.push(Reverse((core.time, core_id)));
            }
        }
    }

    let mut l1_total = ccs_cache::CacheStats::default();
    for l1 in &l1s {
        l1_total.merge(l1.stats());
    }
    let mut l2_total = ccs_cache::CacheStats::default();
    for l2 in &l2s {
        l2_total.merge(l2.stats());
    }

    SimResult {
        config_name: config.name.clone(),
        scheduler: sched.name().to_string(),
        num_cores: p,
        clusters: config.clusters,
        cycles: makespan,
        instructions: comp.total_work(),
        l1: l1_total,
        l2: l2_total,
        l3: l3.map(|c| *c.stats()).unwrap_or_default(),
        memory: *memory.stats(),
        bandwidth_utilization: memory.utilization(makespan),
        core_busy: cores.iter().map(|c| c.busy).collect(),
        tasks: n,
        l2_line_size: line_size,
    }
}
