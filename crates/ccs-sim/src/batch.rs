//! The batched multi-config engine: one recorded pass re-timed per
//! configuration.
//!
//! The paper's latency-sensitivity experiments (Figs. 4 and 5) sweep *only*
//! the L2 hit time and the memory latency: every point shares the
//! computation, the scheduler, the core count and the full cache geometry.
//! The event engine still walks the compiled line stream once per point,
//! re-deriving an access sequence that cannot differ between them.  This
//! module amortises that walk: a **record/replay fast path** runs the event
//! engine once with a tape recorder attached (the crate-private
//! `machine::Record` hook) and re-times the recorded dispatch/miss sequence
//! per configuration.
//!
//! # Correctness: when is the schedule latency-independent?
//!
//! Schedulers observe no simulated times — their interface is
//! `init` / `task_enabled` / `next_task` / `ready_count` ([`ccs_sched`]).
//! On a **single core** the engine is a sequential loop: run a task to
//! completion, enable its ready successors, ask the scheduler for the next
//! task.  Latencies stretch or shrink the clock between those calls but
//! cannot reorder them, so the scheduler (including a seeded random-victim
//! stealer, whose RNG consumption is driven purely by the call sequence)
//! makes the identical decisions under every latency assignment: the task
//! order, the access sequence, and therefore every L1/L2 hit/miss/eviction
//! count are fixed by the first pass.  Only the *timing* differs, and the
//! timing model per recorded event is a closed form over the configured
//! latencies:
//!
//! * between misses, a task advances by its compute cycles (a prefix-sum
//!   lookup on the stream, [`ccs_dag::LineStream::pre_prefix`]) plus one
//!   L1 hit latency per step;
//! * each recorded L1 miss adds the L2 hit latency, and — when the tape
//!   says it missed the L2 — a round trip through a fresh [`MainMemory`]
//!   (whose queueing state is per-config, so contention/bandwidth metrics
//!   are re-derived exactly);
//! * a task close adds its trailing compute.
//!
//! With **multiple cores** this argument breaks: changing a latency moves a
//! core's completion relative to its peers, which flips dispatch order,
//! shared-L2 LRU interleaving and directory invalidations — the access
//! sequence itself moves.  Those groups **fall back** to one full event run
//! per configuration (still byte-identical, just not faster).  The
//! experiment layer's sweep planner
//! ([`Experiment::batch_groups`](../../ccs_experiment/struct.Experiment.html#method.batch_groups))
//! forms the groups; this module only decides replay vs fallback.
//!
//! The replay is **byte-identical** to the event engine for every
//! configuration — pinned by the equivalence suite
//! (`tests/batch_equivalence.rs`: all registered workloads × all
//! schedulers × random latency grids, full [`SimResult`] compared).

use ccs_cache::MainMemory;
use ccs_dag::{Computation, Dag, TaskId};
use ccs_sched::SchedulerSpec;

use crate::config::CmpConfig;
use crate::machine::{self, Record, SimEngine};
use crate::metrics::SimResult;

/// The outcome of one batched group: per-config results plus how they were
/// obtained.
#[derive(Debug)]
pub struct BatchRun {
    /// One result per input configuration, in input order — byte-identical
    /// to running each configuration through the event engine.
    pub results: Vec<SimResult>,
    /// Configurations served by re-timing the recorded pass.
    pub replayed: usize,
    /// Configurations that ran the full event engine (the recording pass,
    /// plus every config of a non-replayable group).
    pub full_runs: usize,
}

/// Whether `a` and `b` may share one simulated pass at all: identical core
/// count and cache geometry (capacity / line size / associativity of both
/// levels), leaving only the latency axes — L1/L2 hit latency, memory
/// latency and service interval — free.  The sweep planner groups points by
/// this predicate.
pub fn same_machine_shape(a: &CmpConfig, b: &CmpConfig) -> bool {
    let l3_shape = |c: &CmpConfig| {
        c.l3.as_ref()
            .map(|l3| (l3.capacity, l3.line_size, l3.associativity))
    };
    a.num_cores == b.num_cores
        && a.clusters == b.clusters
        && a.l1.capacity == b.l1.capacity
        && a.l1.line_size == b.l1.line_size
        && a.l1.associativity == b.l1.associativity
        && a.l2.capacity == b.l2.capacity
        && a.l2.line_size == b.l2.line_size
        && a.l2.associativity == b.l2.associativity
        && l3_shape(a) == l3_shape(b)
}

/// Whether a group of same-shape configurations qualifies for the
/// record/replay fast path: a single core (the latency-independence
/// argument in the module docs), a flat two-level hierarchy (the tape
/// records L2 outcomes only, so an L3 or clustered L2 cannot be re-timed)
/// and a shared geometry.  Other groups return `false` and fall back to
/// full event runs.
pub fn replayable(configs: &[CmpConfig]) -> bool {
    let Some(first) = configs.first() else {
        return false;
    };
    first.num_cores == 1
        && first.l3.is_none()
        && first.clusters == 1
        && configs[1..].iter().all(|c| same_machine_shape(first, c))
}

/// The tape of one recorded pass: task dispatch order plus every L1 miss.
#[derive(Default)]
struct Tape {
    /// Tasks in dispatch order — on one core, the execution order.
    tasks: Vec<TaskId>,
    /// One packed word per L1 miss, in execution order:
    /// `stream_step << 1 | went_to_memory`.
    misses: Vec<u64>,
}

impl Record for Tape {
    #[inline]
    fn task_dispatched(&mut self, task: TaskId) {
        self.tasks.push(task);
    }

    #[inline]
    fn l1_miss(&mut self, step: usize, l2_hit: bool) {
        self.misses.push(((step as u64) << 1) | u64::from(!l2_hit));
    }
}

/// Simulate `comp` under every configuration of one batch group, returning
/// per-config results byte-identical to the event engine.
///
/// When the group is [`replayable`], the first configuration runs the event
/// engine with a tape recorder and the rest are re-timed from the tape;
/// otherwise every configuration runs the event engine in full.  Each run
/// builds a fresh scheduler from `sched` (schedulers are stateful).
pub fn simulate_batch(
    comp: &Computation,
    dag: &Dag,
    configs: &[CmpConfig],
    sched: &SchedulerSpec,
) -> BatchRun {
    assert!(
        !configs.is_empty(),
        "batch needs at least one configuration"
    );
    if !replayable(configs) {
        let results = configs
            .iter()
            .map(|config| {
                let mut s = sched.build();
                machine::simulate_with_engine(comp, dag, config, s.as_mut(), SimEngine::EventDriven)
            })
            .collect();
        return BatchRun {
            results,
            replayed: 0,
            full_runs: configs.len(),
        };
    }

    let mut tape = Tape::default();
    let mut s = sched.build();
    let recorded = machine::event_driven_rec(comp, dag, &configs[0], s.as_mut(), &mut tape);
    let mut results = Vec::with_capacity(configs.len());
    results.push(recorded);
    for config in &configs[1..] {
        let replayed = replay(comp, config, &tape, &results[0]);
        results.push(replayed);
    }
    BatchRun {
        results,
        replayed: configs.len() - 1,
        full_runs: 1,
    }
}

/// Re-time the recorded single-core pass under `config`'s latencies.
///
/// Latency-independent metrics (cache hit/miss/eviction counts, task and
/// instruction totals) are copied from the recording result; the clock, the
/// memory-controller queueing statistics and the bandwidth utilisation are
/// re-derived from the tape.
fn replay(comp: &Computation, config: &CmpConfig, tape: &Tape, recorded: &SimResult) -> SimResult {
    let line_size = config.l2.line_size;
    let stream = comp.line_stream(line_size);
    let prefix = stream.pre_prefix();
    let l1_hit = config.l1.hit_latency;
    let l2_hit = config.l2.hit_latency;
    let mut memory = MainMemory::new(config.memory);

    let mut time = 0u64;
    let mut busy = 0u64;
    let mut makespan = 0u64;
    let mut miss_idx = 0usize;
    for &task in &tape.tasks {
        let started = time;
        let (start, end) = stream.range(task);
        let mut pos = start;
        // This task's misses are the next run of tape entries whose step
        // falls inside its (disjoint) stream window.
        while let Some(&packed) = tape.misses.get(miss_idx) {
            let m = (packed >> 1) as usize;
            if m < start || m >= end {
                break;
            }
            // Steps pos..=m: their compute cycles plus one L1 probe each;
            // the miss at `m` adds the L2 probe, and a memory round trip
            // when the tape says the L2 missed too.
            time += prefix[m + 1] - prefix[pos] + (m + 1 - pos) as u64 * l1_hit + l2_hit;
            if packed & 1 != 0 {
                time = memory.request(time);
            }
            pos = m + 1;
            miss_idx += 1;
        }
        // The task's trailing all-hit steps, then its closing compute.
        time += prefix[end] - prefix[pos] + (end - pos) as u64 * l1_hit;
        time += comp.task(task).post_compute;
        makespan = makespan.max(time);
        busy += time - started;
    }
    debug_assert_eq!(miss_idx, tape.misses.len(), "replay consumed every miss");

    SimResult {
        config_name: config.name.clone(),
        scheduler: recorded.scheduler.clone(),
        num_cores: 1,
        clusters: 1,
        cycles: makespan,
        instructions: recorded.instructions,
        l1: recorded.l1,
        l2: recorded.l2,
        l3: recorded.l3,
        memory: *memory.stats(),
        bandwidth_utilization: memory.utilization(makespan),
        core_busy: vec![busy],
        tasks: recorded.tasks,
        l2_line_size: line_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::simulate_engine;
    use ccs_dag::{ComputationBuilder, GroupMeta};

    fn sample_comp() -> Computation {
        let mut b = ComputationBuilder::new(128);
        let mut space = ccs_dag::AddressSpace::new();
        let shared = space.alloc(16 * 1024);
        let leaves: Vec<_> = (0..12)
            .map(|i| {
                let private = space.alloc(4 * 1024);
                b.strand_with(|t| {
                    t.compute(i % 5 + 1)
                        .read_range(shared.base, shared.bytes / 2, 2)
                        .read_range(private.base, private.bytes, 3);
                    if i % 3 == 0 {
                        t.write_range(shared.base, 1024, 2);
                    }
                })
            })
            .collect();
        let par = b.par(leaves, GroupMeta::labeled("batch"));
        b.finish(par)
    }

    fn config(cores: usize, l2_hit: u64, mem_latency: u64) -> CmpConfig {
        let mut cfg = CmpConfig::default_with_cores(if cores <= 1 { 1 } else { 16 }).unwrap();
        cfg.num_cores = cores;
        cfg.name = format!("b{cores}-{l2_hit}-{mem_latency}");
        cfg.l1 = ccs_cache::CacheConfig::new(4 * 1024, 128, 4, 1);
        cfg.l2 = ccs_cache::CacheConfig::new(64 * 1024, 128, 16, l2_hit);
        cfg.memory.latency = mem_latency;
        cfg
    }

    #[test]
    fn shape_and_replay_predicates() {
        let a = config(1, 13, 300);
        let b = config(1, 7, 900);
        assert!(same_machine_shape(&a, &b), "latency axes are free");
        assert!(replayable(&[a.clone(), b.clone()]));
        let wide = config(4, 13, 300);
        assert!(!same_machine_shape(&a, &wide));
        assert!(!replayable(&[wide.clone(), config(4, 7, 300)]), "p > 1");
        let mut fat = config(1, 13, 300);
        fat.l2 = ccs_cache::CacheConfig::new(128 * 1024, 128, 16, 13);
        assert!(!same_machine_shape(&a, &fat));
        assert!(!replayable(&[]));
        let mut with_l3 = config(1, 13, 300);
        with_l3.l3 = Some(ccs_cache::CacheConfig::new(1 << 20, 128, 16, 31));
        assert!(!same_machine_shape(&a, &with_l3), "L3 changes the shape");
        assert!(!replayable(&[with_l3]), "the tape stops at the L2");
        let mut clustered = config(4, 13, 300);
        clustered.clusters = 2;
        assert!(!same_machine_shape(&wide, &clustered));
    }

    #[test]
    fn replayed_results_match_the_event_engine_per_config() {
        let comp = sample_comp();
        let dag = Dag::from_computation(&comp);
        let configs: Vec<CmpConfig> = [(13u64, 300u64), (7, 300), (19, 900), (13, 100)]
            .iter()
            .map(|&(l2, mem)| config(1, l2, mem))
            .collect();
        for sched in ["pdf", "ws", "ws-rand@7"] {
            let spec = SchedulerSpec::resolve(sched).unwrap();
            let run = simulate_batch(&comp, &dag, &configs, &spec);
            assert_eq!(run.replayed, configs.len() - 1);
            assert_eq!(run.full_runs, 1);
            for (cfg, got) in configs.iter().zip(&run.results) {
                let want = simulate_engine(&comp, cfg, spec.clone(), SimEngine::EventDriven);
                assert_eq!(got, &want, "{sched} / {}", cfg.name);
            }
        }
    }

    #[test]
    fn multicore_groups_fall_back_to_full_event_runs() {
        let comp = sample_comp();
        let dag = Dag::from_computation(&comp);
        let configs = vec![config(4, 13, 300), config(4, 7, 900)];
        let spec = SchedulerSpec::new("ws");
        let run = simulate_batch(&comp, &dag, &configs, &spec);
        assert_eq!(run.replayed, 0);
        assert_eq!(run.full_runs, 2);
        for (cfg, got) in configs.iter().zip(&run.results) {
            let want = simulate_engine(&comp, cfg, spec.clone(), SimEngine::EventDriven);
            assert_eq!(got, &want, "{}", cfg.name);
        }
    }
}
