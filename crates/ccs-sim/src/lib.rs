//! Trace-driven CMP simulator for the CCS (constructive cache sharing)
//! reproduction of Chen et al., SPAA 2007.
//!
//! The crate provides:
//!
//! * [`CmpConfig`] — complete CMP design points, with constructors for the
//!   paper's default (Table 2) and single-technology 45 nm (Table 3)
//!   configurations plus the Fig. 4 / Fig. 5 sensitivity overrides;
//! * [`area`] — the ITRS-style area/latency model that derives those design
//!   points from a 240 mm² die budget;
//! * [`simulate`] / [`simulate_with`] — the event-driven, trace-based CMP
//!   simulator (in-order cores, private L1s, shared L2, bounded off-chip
//!   bandwidth) driven by any [`ccs_sched::Scheduler`];
//! * [`SimEngine`] / [`simulate_engine`] — engine selection: the fast
//!   event-driven core (default), the retained reference cycle-stepper, or
//!   the batched multi-config engine — all metrics-identical by
//!   construction;
//! * [`simulate_batch`] / [`BatchRun`] — the batched engine's group entry
//!   point: configurations differing only in latencies share one recorded
//!   pass and are re-timed per config ([`batch`] has the correctness
//!   argument);
//! * [`SimResult`] — execution time, L2 misses per 1000 instructions,
//!   bandwidth utilisation and the other metrics the paper reports;
//! * many-core, three-level hierarchies (DESIGN.md §12):
//!   [`CmpConfig::many_core`] scale points, [`CmpConfig::clustered`]
//!   per-cluster L2 slices and [`CmpConfig::with_l3_mb`] for a shared L3,
//!   with hierarchical sharer masks keeping store invalidation
//!   `O(sharers)` up to 4096 cores.
//!
//! # Example
//!
//! ```
//! use ccs_dag::{AddressSpace, ComputationBuilder, GroupMeta};
//! use ccs_sched::SchedulerKind;
//! use ccs_sim::{simulate, CmpConfig};
//!
//! // Two tasks streaming over the same 64 KB array, then a join.
//! let mut space = AddressSpace::new();
//! let data = space.alloc(64 * 1024);
//! let mut b = ComputationBuilder::new(128);
//! let t1 = b.strand_with(|t| { t.read_range(data.base, data.bytes, 2); });
//! let t2 = b.strand_with(|t| { t.read_range(data.base, data.bytes, 2); });
//! let par = b.par(vec![t1, t2], GroupMeta::labeled("scan"));
//! let join = b.strand_with(|t| { t.compute(10); });
//! let root = b.seq(vec![par, join], GroupMeta::labeled("root"));
//! let comp = b.finish(root);
//!
//! let config = CmpConfig::default_with_cores(2).unwrap();
//! let pdf = simulate(&comp, &config, SchedulerKind::Pdf);
//! let ws = simulate(&comp, &config, SchedulerKind::WorkStealing);
//! assert_eq!(pdf.instructions, ws.instructions);
//! assert!(pdf.l2.misses <= ws.l2.misses);
//! ```
//!
//! A three-level machine is one builder chain away, and every engine
//! reports byte-identical metrics for it:
//!
//! ```
//! use ccs_sim::{simulate_engine, CmpConfig, SimEngine};
//! # use ccs_dag::{AddressSpace, ComputationBuilder, GroupMeta};
//! # let mut space = AddressSpace::new();
//! # let data = space.alloc(16 * 1024);
//! # let mut b = ComputationBuilder::new(128);
//! # let t1 = b.strand_with(|t| { t.read_range(data.base, data.bytes, 1); });
//! # let t2 = b.strand_with(|t| { t.write(data.base, 64); });
//! # let par = b.par(vec![t1, t2], GroupMeta::labeled("scan"));
//! # let comp = b.finish(par);
//! // 64 cores in four 16-core clusters (a quarter of the L2 each),
//! // backed by a 32 MB shared L3.
//! let config = CmpConfig::many_core(64).clustered(4).with_l3_mb(32);
//! let fast = simulate_engine(&comp, &config, "pdf", SimEngine::EventDriven);
//! let slow = simulate_engine(&comp, &config, "pdf", SimEngine::Reference);
//! assert_eq!(fast, slow);
//! assert_eq!(fast.l3.accesses, fast.l2.misses); // the L3 sits below the L2s
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod area;
pub mod batch;
pub mod config;
pub mod machine;
pub mod metrics;
mod reference;

pub use area::Technology;
pub use batch::{simulate_batch, BatchRun};
pub use config::CmpConfig;
pub use machine::{simulate, simulate_engine, simulate_with, simulate_with_engine, SimEngine};
pub use metrics::SimResult;
