//! CMP configurations (Tables 1–3).
//!
//! A [`CmpConfig`] bundles everything the simulator needs: the number of
//! cores, the private L1 geometry, the shared L2 geometry and latency, and
//! the off-chip memory timing.  Constructors are provided for the paper's
//! *default* (scaling-technology, Table 2) and *single-technology* (45 nm,
//! Table 3) design points, plus a `scaled` transform that shrinks the caches
//! proportionally for scaled-down experiment inputs (DESIGN.md §4).

use ccs_cache::{CacheConfig, MemoryConfig};

use crate::area::{self, Technology};

/// A complete CMP design point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CmpConfig {
    /// Human-readable name, e.g. `"default-8"` or `"45nm-20"`.
    pub name: String,
    /// Number of processing cores.
    pub num_cores: usize,
    /// Process technology the configuration is based on.
    pub technology: Technology,
    /// Private, per-core L1 cache.
    pub l1: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// Off-chip memory timing.
    pub memory: MemoryConfig,
}

impl CmpConfig {
    /// Build a configuration from a core count, technology and L2 capacity in
    /// megabytes, deriving the L2 associativity and hit time from the area
    /// model and using the Table 1 values for everything else.
    pub fn from_l2_mb(
        name: impl Into<String>,
        technology: Technology,
        num_cores: usize,
        l2_mb: u64,
    ) -> Self {
        CmpConfig {
            name: name.into(),
            num_cores,
            technology,
            l1: CacheConfig::paper_l1(),
            l2: area::l2_config(l2_mb, 128),
            memory: MemoryConfig::paper_default(),
        }
    }

    /// The six default (scaling-technology) configurations of Table 2, for
    /// 1, 2, 4, 8, 16 and 32 cores.
    pub fn default_configs() -> Vec<CmpConfig> {
        [
            (1usize, Technology::Nm90, 10u64),
            (2, Technology::Nm90, 8),
            (4, Technology::Nm90, 4),
            (8, Technology::Nm65, 8),
            (16, Technology::Nm45, 20),
            (32, Technology::Nm32, 40),
        ]
        .into_iter()
        .map(|(cores, tech, mb)| CmpConfig::from_l2_mb(format!("default-{cores}"), tech, cores, mb))
        .collect()
    }

    /// The default configuration with the given number of cores (1, 2, 4, 8,
    /// 16 or 32).
    pub fn default_with_cores(cores: usize) -> Option<CmpConfig> {
        Self::default_configs()
            .into_iter()
            .find(|c| c.num_cores == cores)
    }

    /// The fourteen single-technology (45 nm) configurations of Table 3, for
    /// 1–26 cores.
    pub fn single_tech_45nm() -> Vec<CmpConfig> {
        [
            (1usize, 48u64),
            (2, 44),
            (4, 40),
            (6, 36),
            (8, 32),
            (10, 32),
            (12, 28),
            (14, 24),
            (16, 20),
            (18, 16),
            (20, 12),
            (22, 9),
            (24, 5),
            (26, 1),
        ]
        .into_iter()
        .map(|(cores, mb)| {
            CmpConfig::from_l2_mb(format!("45nm-{cores}"), Technology::Nm45, cores, mb)
        })
        .collect()
    }

    /// Override the L2 hit latency (Fig. 4 sensitivity study).
    pub fn with_l2_hit_latency(mut self, cycles: u64) -> Self {
        self.l2.hit_latency = cycles;
        self.name = format!("{}-l2hit{}", self.name, cycles);
        self
    }

    /// Override the main-memory latency (Fig. 5 sensitivity study).
    pub fn with_memory_latency(mut self, cycles: u64) -> Self {
        self.memory.latency = cycles;
        self.name = format!("{}-mem{}", self.name, cycles);
        self
    }

    /// Shrink both cache capacities by `1/divisor` (latencies, line sizes and
    /// memory timing unchanged), re-deriving the associativities for the new
    /// capacities.  Used to run scaled-down workloads whose inputs were also
    /// divided by `divisor`, preserving all capacity ratios (DESIGN.md §4).
    pub fn scaled(&self, divisor: u64) -> CmpConfig {
        assert!(divisor >= 1, "scale divisor must be at least 1");
        if divisor == 1 {
            return self.clone();
        }
        let scale_cache = |c: &CacheConfig, min_bytes: u64| {
            let capacity = (c.capacity / divisor).max(min_bytes).max(c.line_size);
            // Keep capacity a multiple of the line size.
            let capacity = (capacity / c.line_size).max(1) * c.line_size;
            let assoc =
                area::l2_associativity(capacity, c.line_size).min((capacity / c.line_size) as u32);
            CacheConfig::new(capacity, c.line_size, assoc, c.hit_latency)
        };
        CmpConfig {
            name: format!("{}/{}", self.name, divisor),
            num_cores: self.num_cores,
            technology: self.technology,
            l1: scale_cache(&self.l1, 4 * 1024),
            l2: scale_cache(&self.l2, 16 * 1024),
            memory: self.memory,
        }
    }

    /// Total instructions-per-cycle capability (1 per core — Table 1's
    /// in-order scalar cores).
    pub fn peak_ipc(&self) -> u64 {
        self.num_cores as u64
    }
}

impl std::fmt::Display for CmpConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} cores, {} KB L2, {}-way, {}-cycle hit, {})",
            self.name,
            self.num_cores,
            self.l2.capacity / 1024,
            self.l2.associativity,
            self.l2.hit_latency,
            self.technology,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_match_table2() {
        let configs = CmpConfig::default_configs();
        assert_eq!(configs.len(), 6);
        let expected: &[(usize, u64, u32, u64)] = &[
            (1, 10, 20, 15),
            (2, 8, 16, 13),
            (4, 4, 16, 11),
            (8, 8, 16, 13),
            (16, 20, 20, 19),
            (32, 40, 20, 23),
        ];
        for (cfg, &(cores, mb, assoc, hit)) in configs.iter().zip(expected) {
            assert_eq!(cfg.num_cores, cores);
            assert_eq!(cfg.l2.capacity, mb * 1024 * 1024);
            assert_eq!(cfg.l2.associativity, assoc);
            assert_eq!(cfg.l2.hit_latency, hit);
            assert_eq!(cfg.l1, CacheConfig::paper_l1());
            assert_eq!(cfg.memory, MemoryConfig::paper_default());
        }
    }

    #[test]
    fn single_tech_matches_table3() {
        let configs = CmpConfig::single_tech_45nm();
        assert_eq!(configs.len(), 14);
        let expected: &[(usize, u64, u32, u64)] = &[
            (1, 48, 24, 25),
            (2, 44, 22, 25),
            (4, 40, 20, 23),
            (6, 36, 18, 23),
            (8, 32, 16, 21),
            (10, 32, 16, 21),
            (12, 28, 28, 21),
            (14, 24, 24, 19),
            (16, 20, 20, 19),
            (18, 16, 16, 17),
            (20, 12, 24, 15),
            (22, 9, 18, 15),
            (24, 5, 20, 13),
            (26, 1, 16, 7),
        ];
        for (cfg, &(cores, mb, assoc, hit)) in configs.iter().zip(expected) {
            assert_eq!(cfg.num_cores, cores, "{}", cfg.name);
            assert_eq!(cfg.l2.capacity, mb * 1024 * 1024, "{}", cfg.name);
            assert_eq!(cfg.l2.associativity, assoc, "{}", cfg.name);
            assert_eq!(cfg.l2.hit_latency, hit, "{}", cfg.name);
        }
    }

    #[test]
    fn default_with_cores_lookup() {
        assert_eq!(CmpConfig::default_with_cores(16).unwrap().num_cores, 16);
        assert!(CmpConfig::default_with_cores(7).is_none());
    }

    #[test]
    fn sensitivity_overrides() {
        let base = CmpConfig::default_with_cores(16).unwrap();
        let fast = base.clone().with_l2_hit_latency(7);
        assert_eq!(fast.l2.hit_latency, 7);
        let slow_mem = base.clone().with_memory_latency(1100);
        assert_eq!(slow_mem.memory.latency, 1100);
        assert_eq!(base.l2.hit_latency, 19, "original untouched");
    }

    #[test]
    fn scaling_preserves_ratios_and_validity() {
        let base = CmpConfig::default_with_cores(32).unwrap();
        let scaled = base.scaled(16);
        assert_eq!(scaled.l2.capacity, base.l2.capacity / 16);
        assert_eq!(scaled.l1.capacity, base.l1.capacity / 16);
        assert_eq!(scaled.l2.hit_latency, base.l2.hit_latency);
        assert!(scaled.l1.validate().is_ok());
        assert!(scaled.l2.validate().is_ok());
        // Scaling by 1 is the identity.
        assert_eq!(base.scaled(1), base);
    }

    #[test]
    fn scaling_never_goes_below_minimums() {
        let tiny = CmpConfig::single_tech_45nm().pop().unwrap(); // 26 cores, 1 MB
        let scaled = tiny.scaled(256);
        assert!(scaled.l2.capacity >= 16 * 1024);
        assert!(scaled.l1.capacity >= 4 * 1024);
        assert!(scaled.l2.validate().is_ok());
    }

    #[test]
    fn display_is_informative() {
        let cfg = CmpConfig::default_with_cores(8).unwrap();
        let s = cfg.to_string();
        assert!(s.contains("8 cores"));
        assert!(s.contains("65nm"));
    }
}
