//! CMP configurations (Tables 1–3), plus the many-core extensions.
//!
//! A [`CmpConfig`] bundles everything the simulator needs: the number of
//! cores, the private L1 geometry, the shared L2 geometry and latency, and
//! the off-chip memory timing.  Constructors are provided for the paper's
//! *default* (scaling-technology, Table 2) and *single-technology* (45 nm,
//! Table 3) design points, plus a `scaled` transform that shrinks the caches
//! proportionally for scaled-down experiment inputs (DESIGN.md §4).
//!
//! Beyond the paper's tables, a configuration can describe a three-level,
//! clustered hierarchy (DESIGN.md §12): [`CmpConfig::clustered`] partitions
//! the cores into clusters that each own a slice of the L2, and
//! [`CmpConfig::with_l3_mb`] adds a chip-wide shared L3 behind the L2s.
//! [`CmpConfig::many_core`] builds the flat 64–1024-core design points the
//! scaling study (`figs::scaling_profile`) starts from.  The default for
//! every table constructor is the paper's topology: one shared L2
//! (`clusters == 1`) and no L3.

use ccs_cache::{CacheConfig, MemoryConfig};

use crate::area::{self, Technology};

/// A complete CMP design point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CmpConfig {
    /// Human-readable name, e.g. `"default-8"` or `"45nm-20"`.
    pub name: String,
    /// Number of processing cores.
    pub num_cores: usize,
    /// Process technology the configuration is based on.
    pub technology: Technology,
    /// Private, per-core L1 cache.
    pub l1: CacheConfig,
    /// L2 cache.  With `clusters == 1` this is the chip-wide shared L2 of
    /// the paper; with `clusters > 1` it is the geometry of *each* cluster's
    /// L2 slice (see [`CmpConfig::clustered`]).
    pub l2: CacheConfig,
    /// Optional chip-wide shared L3 behind the L2s (`None` = the paper's
    /// two-level hierarchy).
    pub l3: Option<CacheConfig>,
    /// Number of L2 clusters the cores are partitioned into.  `1` (the
    /// default everywhere) is the paper's single shared L2; larger values
    /// give each group of `num_cores / clusters` cores its own L2.
    pub clusters: usize,
    /// Off-chip memory timing.
    pub memory: MemoryConfig,
}

impl CmpConfig {
    /// Build a configuration from a core count, technology and L2 capacity in
    /// megabytes, deriving the L2 associativity and hit time from the area
    /// model and using the Table 1 values for everything else.
    pub fn from_l2_mb(
        name: impl Into<String>,
        technology: Technology,
        num_cores: usize,
        l2_mb: u64,
    ) -> Self {
        CmpConfig {
            name: name.into(),
            num_cores,
            technology,
            l1: CacheConfig::paper_l1(),
            l2: area::l2_config(l2_mb, 128),
            l3: None,
            clusters: 1,
            memory: MemoryConfig::paper_default(),
        }
    }

    /// A flat many-core design point beyond the paper's tables, used by the
    /// scaling study (DESIGN.md §12): `cores` cores at 32 nm with a shared
    /// L2 sized at one megabyte per four cores, clamped to [16, 128] MB.
    /// Compose with [`CmpConfig::clustered`] and [`CmpConfig::with_l3_mb`]
    /// for the three-level variants.
    pub fn many_core(cores: usize) -> CmpConfig {
        assert!(cores >= 1, "need at least one core");
        let l2_mb = (cores as u64 / 4).clamp(16, 128);
        CmpConfig::from_l2_mb(format!("scale-{cores}"), Technology::Nm32, cores, l2_mb)
    }

    /// The six default (scaling-technology) configurations of Table 2, for
    /// 1, 2, 4, 8, 16 and 32 cores.
    pub fn default_configs() -> Vec<CmpConfig> {
        [
            (1usize, Technology::Nm90, 10u64),
            (2, Technology::Nm90, 8),
            (4, Technology::Nm90, 4),
            (8, Technology::Nm65, 8),
            (16, Technology::Nm45, 20),
            (32, Technology::Nm32, 40),
        ]
        .into_iter()
        .map(|(cores, tech, mb)| CmpConfig::from_l2_mb(format!("default-{cores}"), tech, cores, mb))
        .collect()
    }

    /// The default configuration with the given number of cores (1, 2, 4, 8,
    /// 16 or 32).
    pub fn default_with_cores(cores: usize) -> Option<CmpConfig> {
        Self::default_configs()
            .into_iter()
            .find(|c| c.num_cores == cores)
    }

    /// The fourteen single-technology (45 nm) configurations of Table 3, for
    /// 1–26 cores.
    pub fn single_tech_45nm() -> Vec<CmpConfig> {
        [
            (1usize, 48u64),
            (2, 44),
            (4, 40),
            (6, 36),
            (8, 32),
            (10, 32),
            (12, 28),
            (14, 24),
            (16, 20),
            (18, 16),
            (20, 12),
            (22, 9),
            (24, 5),
            (26, 1),
        ]
        .into_iter()
        .map(|(cores, mb)| {
            CmpConfig::from_l2_mb(format!("45nm-{cores}"), Technology::Nm45, cores, mb)
        })
        .collect()
    }

    /// Override the L2 hit latency (Fig. 4 sensitivity study).
    pub fn with_l2_hit_latency(mut self, cycles: u64) -> Self {
        self.l2.hit_latency = cycles;
        self.name = format!("{}-l2hit{}", self.name, cycles);
        self
    }

    /// Override the main-memory latency (Fig. 5 sensitivity study).
    pub fn with_memory_latency(mut self, cycles: u64) -> Self {
        self.memory.latency = cycles;
        self.name = format!("{}-mem{}", self.name, cycles);
        self
    }

    /// Add a chip-wide shared L3 of `capacity_mb` megabytes behind the
    /// (possibly clustered) L2s, deriving its associativity and hit time
    /// from the same banked area model as the L2 (DESIGN.md §12).  An L2
    /// miss then probes the L3 before going off-chip.
    pub fn with_l3_mb(mut self, capacity_mb: u64) -> Self {
        assert!(capacity_mb >= 1, "L3 needs at least one megabyte");
        self.l3 = Some(area::l2_config(capacity_mb, self.l2.line_size));
        self.name = format!("{}-l3m{}", self.name, capacity_mb);
        self
    }

    /// Partition the cores into `clusters` clusters, each owning a
    /// `1/clusters` slice of the L2 capacity (associativity re-derived for
    /// the smaller slice, hit latency and line size unchanged — compose
    /// with [`CmpConfig::with_l2_hit_latency`] to override).  The aggregate
    /// L2 capacity on chip is preserved; what changes is which cores share
    /// it.  `num_cores` must be divisible by `clusters`.
    pub fn clustered(mut self, clusters: usize) -> Self {
        assert!(clusters >= 1, "need at least one cluster");
        assert!(
            self.num_cores.is_multiple_of(clusters),
            "{} cores cannot be split into {clusters} equal clusters",
            self.num_cores
        );
        if clusters == 1 {
            return self;
        }
        let capacity = (self.l2.capacity / clusters as u64).max(self.l2.line_size);
        let capacity = (capacity / self.l2.line_size).max(1) * self.l2.line_size;
        let assoc = area::l2_associativity(capacity, self.l2.line_size)
            .min((capacity / self.l2.line_size) as u32);
        self.l2 = CacheConfig::new(capacity, self.l2.line_size, assoc, self.l2.hit_latency);
        self.clusters = clusters;
        self.name = format!("{}-c{}", self.name, clusters);
        self
    }

    /// Cores per L2 cluster (`num_cores / clusters`).
    pub fn cores_per_cluster(&self) -> usize {
        debug_assert_eq!(self.num_cores % self.clusters, 0);
        self.num_cores / self.clusters
    }

    /// Shrink both cache capacities by `1/divisor` (latencies, line sizes and
    /// memory timing unchanged), re-deriving the associativities for the new
    /// capacities.  Used to run scaled-down workloads whose inputs were also
    /// divided by `divisor`, preserving all capacity ratios (DESIGN.md §4).
    pub fn scaled(&self, divisor: u64) -> CmpConfig {
        assert!(divisor >= 1, "scale divisor must be at least 1");
        if divisor == 1 {
            return self.clone();
        }
        let scale_cache = |c: &CacheConfig, min_bytes: u64| {
            let capacity = (c.capacity / divisor).max(min_bytes).max(c.line_size);
            // Keep capacity a multiple of the line size.
            let capacity = (capacity / c.line_size).max(1) * c.line_size;
            let assoc =
                area::l2_associativity(capacity, c.line_size).min((capacity / c.line_size) as u32);
            CacheConfig::new(capacity, c.line_size, assoc, c.hit_latency)
        };
        CmpConfig {
            name: format!("{}/{}", self.name, divisor),
            num_cores: self.num_cores,
            technology: self.technology,
            l1: scale_cache(&self.l1, 4 * 1024),
            l2: scale_cache(&self.l2, 16 * 1024),
            l3: self.l3.as_ref().map(|l3| scale_cache(l3, 32 * 1024)),
            clusters: self.clusters,
            memory: self.memory,
        }
    }

    /// Total instructions-per-cycle capability (1 per core — Table 1's
    /// in-order scalar cores).
    pub fn peak_ipc(&self) -> u64 {
        self.num_cores as u64
    }
}

impl std::fmt::Display for CmpConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} cores, {} KB L2, {}-way, {}-cycle hit, {})",
            self.name,
            self.num_cores,
            self.l2.capacity / 1024,
            self.l2.associativity,
            self.l2.hit_latency,
            self.technology,
        )?;
        if self.clusters > 1 {
            write!(
                f,
                ", {} clusters of {}",
                self.clusters,
                self.cores_per_cluster()
            )?;
        }
        if let Some(l3) = &self.l3 {
            write!(f, ", {} KB shared L3", l3.capacity / 1024)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_match_table2() {
        let configs = CmpConfig::default_configs();
        assert_eq!(configs.len(), 6);
        let expected: &[(usize, u64, u32, u64)] = &[
            (1, 10, 20, 15),
            (2, 8, 16, 13),
            (4, 4, 16, 11),
            (8, 8, 16, 13),
            (16, 20, 20, 19),
            (32, 40, 20, 23),
        ];
        for (cfg, &(cores, mb, assoc, hit)) in configs.iter().zip(expected) {
            assert_eq!(cfg.num_cores, cores);
            assert_eq!(cfg.l2.capacity, mb * 1024 * 1024);
            assert_eq!(cfg.l2.associativity, assoc);
            assert_eq!(cfg.l2.hit_latency, hit);
            assert_eq!(cfg.l1, CacheConfig::paper_l1());
            assert_eq!(cfg.memory, MemoryConfig::paper_default());
        }
    }

    #[test]
    fn single_tech_matches_table3() {
        let configs = CmpConfig::single_tech_45nm();
        assert_eq!(configs.len(), 14);
        let expected: &[(usize, u64, u32, u64)] = &[
            (1, 48, 24, 25),
            (2, 44, 22, 25),
            (4, 40, 20, 23),
            (6, 36, 18, 23),
            (8, 32, 16, 21),
            (10, 32, 16, 21),
            (12, 28, 28, 21),
            (14, 24, 24, 19),
            (16, 20, 20, 19),
            (18, 16, 16, 17),
            (20, 12, 24, 15),
            (22, 9, 18, 15),
            (24, 5, 20, 13),
            (26, 1, 16, 7),
        ];
        for (cfg, &(cores, mb, assoc, hit)) in configs.iter().zip(expected) {
            assert_eq!(cfg.num_cores, cores, "{}", cfg.name);
            assert_eq!(cfg.l2.capacity, mb * 1024 * 1024, "{}", cfg.name);
            assert_eq!(cfg.l2.associativity, assoc, "{}", cfg.name);
            assert_eq!(cfg.l2.hit_latency, hit, "{}", cfg.name);
        }
    }

    #[test]
    fn default_with_cores_lookup() {
        assert_eq!(CmpConfig::default_with_cores(16).unwrap().num_cores, 16);
        assert!(CmpConfig::default_with_cores(7).is_none());
    }

    #[test]
    fn sensitivity_overrides() {
        let base = CmpConfig::default_with_cores(16).unwrap();
        let fast = base.clone().with_l2_hit_latency(7);
        assert_eq!(fast.l2.hit_latency, 7);
        let slow_mem = base.clone().with_memory_latency(1100);
        assert_eq!(slow_mem.memory.latency, 1100);
        assert_eq!(base.l2.hit_latency, 19, "original untouched");
    }

    #[test]
    fn scaling_preserves_ratios_and_validity() {
        let base = CmpConfig::default_with_cores(32).unwrap();
        let scaled = base.scaled(16);
        assert_eq!(scaled.l2.capacity, base.l2.capacity / 16);
        assert_eq!(scaled.l1.capacity, base.l1.capacity / 16);
        assert_eq!(scaled.l2.hit_latency, base.l2.hit_latency);
        assert!(scaled.l1.validate().is_ok());
        assert!(scaled.l2.validate().is_ok());
        // Scaling by 1 is the identity.
        assert_eq!(base.scaled(1), base);
    }

    #[test]
    fn scaling_never_goes_below_minimums() {
        let tiny = CmpConfig::single_tech_45nm().pop().unwrap(); // 26 cores, 1 MB
        let scaled = tiny.scaled(256);
        assert!(scaled.l2.capacity >= 16 * 1024);
        assert!(scaled.l1.capacity >= 4 * 1024);
        assert!(scaled.l2.validate().is_ok());
    }

    #[test]
    fn display_is_informative() {
        let cfg = CmpConfig::default_with_cores(8).unwrap();
        let s = cfg.to_string();
        assert!(s.contains("8 cores"));
        assert!(s.contains("65nm"));
    }

    #[test]
    fn table_constructors_default_to_flat_two_level() {
        for cfg in CmpConfig::default_configs()
            .into_iter()
            .chain(CmpConfig::single_tech_45nm())
        {
            assert_eq!(cfg.clusters, 1, "{}", cfg.name);
            assert!(cfg.l3.is_none(), "{}", cfg.name);
            assert_eq!(cfg.cores_per_cluster(), cfg.num_cores);
        }
    }

    #[test]
    fn clustering_partitions_the_l2_capacity() {
        let base = CmpConfig::many_core(256);
        let clustered = base.clone().clustered(8);
        assert_eq!(clustered.clusters, 8);
        assert_eq!(clustered.cores_per_cluster(), 32);
        assert_eq!(
            clustered.l2.capacity * 8,
            base.l2.capacity,
            "aggregate L2 capacity preserved"
        );
        assert_eq!(clustered.l2.hit_latency, base.l2.hit_latency);
        assert!(clustered.l2.validate().is_ok());
        assert!(clustered.name.ends_with("-c8"), "{}", clustered.name);
        // A single cluster is the identity.
        assert_eq!(base.clone().clustered(1), base);
    }

    #[test]
    #[should_panic(expected = "equal clusters")]
    fn clustering_requires_divisible_cores() {
        let _ = CmpConfig::many_core(64).clustered(7);
    }

    #[test]
    fn l3_is_derived_from_the_area_model() {
        let cfg = CmpConfig::many_core(256).with_l3_mb(64);
        let l3 = cfg.l3.expect("L3 present");
        assert_eq!(l3.capacity, 64 * 1024 * 1024);
        assert_eq!(l3.line_size, cfg.l2.line_size);
        assert_eq!(l3.hit_latency, crate::area::l2_hit_latency(64));
        assert!(l3.validate().is_ok());
        assert!(cfg.name.ends_with("-l3m64"), "{}", cfg.name);
    }

    #[test]
    fn scaling_shrinks_the_l3_and_keeps_the_topology() {
        let base = CmpConfig::many_core(256).clustered(8).with_l3_mb(64);
        let scaled = base.scaled(64);
        assert_eq!(scaled.clusters, 8);
        let l3 = scaled.l3.expect("L3 survives scaling");
        assert_eq!(l3.capacity, 1024 * 1024);
        assert!(l3.validate().is_ok());
        assert_eq!(base.scaled(1), base, "identity holds with L3/clusters");
        // The minimum floor engages for extreme divisors.
        let tiny = base.scaled(1 << 20);
        assert!(tiny.l3.unwrap().capacity >= 32 * 1024);
    }

    #[test]
    fn many_core_points_are_valid_and_named() {
        for cores in [64usize, 128, 256, 512, 1024] {
            let cfg = CmpConfig::many_core(cores);
            assert_eq!(cfg.num_cores, cores);
            assert_eq!(cfg.name, format!("scale-{cores}"));
            assert!(cfg.l2.validate().is_ok());
            assert!(cfg.l2.capacity >= 16 * 1024 * 1024);
        }
    }

    #[test]
    fn display_shows_clusters_and_l3() {
        let cfg = CmpConfig::many_core(256).clustered(8).with_l3_mb(64);
        let s = cfg.to_string();
        assert!(s.contains("8 clusters of 32"), "{s}");
        assert!(s.contains("65536 KB shared L3"), "{s}");
    }
}
