//! Area / technology model (Section 4.1).
//!
//! The paper derives its CMP configurations from an area budget: a fixed
//! 240 mm² die, 75 % of which goes to cores + L2 + interconnect, 15 % of that
//! to the interconnect, leaving ≈ 150 mm² for cores and cache.  Core area is
//! taken from the IBM PowerPC RS64 scaled by ITRS logic area factors, cache
//! density from ITRS SRAM cell area factors, and L2 latency from a 2-D mesh
//! of Cacti-optimised 1 MB / 2 MB banks.
//!
//! Cacti 3.2 and the ITRS 2005 tables are not redistributable, so this module
//! uses per-technology constants *calibrated to reproduce the published
//! Table 2 and Table 3 design points* (see the tests, which check every
//! published point), plus the bank/mesh latency model described in the text:
//!
//! * banks are 2 MB (9-cycle access) unless the cache is smaller than 2 MB, in
//!   which case a single 1 MB-class bank (7-cycle access) is used;
//! * banks are arranged in an `r × c` mesh with 1-cycle hops; the hit time is
//!   the round trip to the furthest bank plus the bank access time;
//! * associativity is chosen so the number of sets is the largest power of two
//!   that keeps the associativity in `[16, 31]`.

use ccs_cache::CacheConfig;

/// Process technologies considered by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Technology {
    /// 90 nm.
    Nm90,
    /// 65 nm.
    Nm65,
    /// 45 nm.
    Nm45,
    /// 32 nm.
    Nm32,
}

impl Technology {
    /// Feature size in nanometres.
    pub fn nanometers(self) -> u32 {
        match self {
            Technology::Nm90 => 90,
            Technology::Nm65 => 65,
            Technology::Nm45 => 45,
            Technology::Nm32 => 32,
        }
    }

    /// Area of one in-order core (including its private L1) in mm²,
    /// calibrated from the PowerPC RS64-derived numbers behind Tables 2–3.
    pub fn core_area_mm2(self) -> f64 {
        match self {
            Technology::Nm90 => 25.0,
            Technology::Nm65 => 12.5,
            Technology::Nm45 => 5.65,
            Technology::Nm32 => 2.8,
        }
    }

    /// SRAM area per megabyte of L2 cache in mm²/MB (ITRS-2005-derived,
    /// calibrated to the published tables).
    pub fn sram_mm2_per_mb(self) -> f64 {
        match self {
            Technology::Nm90 => 12.5,
            Technology::Nm65 => 6.25,
            Technology::Nm45 => 3.0,
            Technology::Nm32 => 1.5,
        }
    }
}

impl std::fmt::Display for Technology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}nm", self.nanometers())
    }
}

/// Total die area in mm² (Section 4.1).
pub const DIE_AREA_MM2: f64 = 240.0;

/// Area available for cores + L2 after removing the system-on-chip share
/// (25 %) and the interconnect share (15 % of the remainder): ≈ 150 mm².
pub fn core_cache_area_mm2() -> f64 {
    DIE_AREA_MM2 * 0.75 * 0.85
}

/// The L2 capacity (in whole megabytes) available to a CMP with `cores` cores
/// in `tech`, under the proportional area model.  Returns `None` when the
/// cores alone exceed the area budget or no cache would fit.
pub fn l2_capacity_mb(tech: Technology, cores: u32) -> Option<u64> {
    let area = core_cache_area_mm2() - cores as f64 * tech.core_area_mm2();
    if area <= 0.0 {
        return None;
    }
    let mb = (area / tech.sram_mm2_per_mb()).round() as u64;
    if mb == 0 {
        None
    } else {
        Some(mb)
    }
}

/// Bank access latency in cycles for the bank size used at `capacity_mb`
/// (Section 4.1: 1 MB banks take 7 cycles, 2 MB banks 9 cycles).
fn bank_latency(capacity_mb: u64) -> (u64, u64) {
    if capacity_mb < 2 {
        (1, 7) // (bank size MB, access cycles)
    } else {
        (2, 9)
    }
}

/// L2 hit latency in cycles for a cache of `capacity_mb` megabytes: round trip
/// across the bank mesh to the furthest bank plus the bank access time.
pub fn l2_hit_latency(capacity_mb: u64) -> u64 {
    let (bank_mb, bank_cycles) = bank_latency(capacity_mb);
    let banks = capacity_mb.div_ceil(bank_mb).max(1);
    let rows = (banks as f64).sqrt().floor().max(1.0) as u64;
    let cols = banks.div_ceil(rows);
    let hops = (rows - 1) + (cols - 1);
    2 * hops + bank_cycles
}

/// Associativity for a cache of `capacity` bytes with `line_size`-byte lines:
/// the number of sets is the largest power of two that keeps the
/// associativity at least 16 (capped at the number of lines for tiny caches).
pub fn l2_associativity(capacity: u64, line_size: u64) -> u32 {
    let lines = (capacity / line_size).max(1);
    let mut sets: u64 = 1;
    while lines.is_multiple_of(sets * 2) && lines / (sets * 2) >= 16 {
        sets *= 2;
    }
    (lines / sets).min(lines) as u32
}

/// Full derived L2 configuration for a cache of `capacity_mb` megabytes.
pub fn l2_config(capacity_mb: u64, line_size: u64) -> CacheConfig {
    let capacity = capacity_mb * 1024 * 1024;
    CacheConfig::new(
        capacity,
        line_size,
        l2_associativity(capacity, line_size),
        l2_hit_latency(capacity_mb),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published Table 2 (default configurations): cores, technology,
    /// L2 MB, associativity, hit time.
    const TABLE2: &[(u32, Technology, u64, u32, u64)] = &[
        (1, Technology::Nm90, 10, 20, 15),
        (2, Technology::Nm90, 8, 16, 13),
        (4, Technology::Nm90, 4, 16, 11),
        (8, Technology::Nm65, 8, 16, 13),
        (16, Technology::Nm45, 20, 20, 19),
        (32, Technology::Nm32, 40, 20, 23),
    ];

    /// Published Table 3 (45 nm single-technology configurations).
    const TABLE3: &[(u32, u64, u32, u64)] = &[
        (1, 48, 24, 25),
        (2, 44, 22, 25),
        (4, 40, 20, 23),
        (6, 36, 18, 23),
        (8, 32, 16, 21),
        (10, 32, 16, 21),
        (12, 28, 28, 21),
        (14, 24, 24, 19),
        (16, 20, 20, 19),
        (18, 16, 16, 17),
        (20, 12, 24, 15),
        (22, 9, 18, 15),
        (24, 5, 20, 13),
        (26, 1, 16, 7),
    ];

    #[test]
    fn area_budget_matches_paper() {
        assert!((core_cache_area_mm2() - 153.0).abs() < 1.0);
    }

    #[test]
    fn capacity_model_reproduces_table2_within_tolerance() {
        for &(cores, tech, mb, _, _) in TABLE2 {
            let model = l2_capacity_mb(tech, cores).unwrap();
            let err = (model as f64 - mb as f64).abs();
            assert!(
                err <= (mb as f64 * 0.25).max(2.0),
                "{tech} {cores} cores: model {model} MB vs published {mb} MB"
            );
        }
    }

    #[test]
    fn capacity_model_reproduces_table3_within_tolerance() {
        // The published Table 3 is not exactly linear in the core count (the
        // authors round to bankable sizes); the proportional-area model lands
        // within 4 MB of every published point and within 1 MB from 14 cores
        // up.  The simulator itself uses the published values verbatim
        // (`CmpConfig::single_tech_45nm`); the model is for extrapolation.
        for &(cores, mb, _, _) in TABLE3 {
            let model = l2_capacity_mb(Technology::Nm45, cores).unwrap();
            assert!(
                (model as i64 - mb as i64).abs() <= 4,
                "45nm {cores} cores: model {model} MB vs published {mb} MB"
            );
            if cores >= 14 {
                assert!(
                    (model as i64 - mb as i64).abs() <= 1,
                    "45nm {cores} cores: model {model} MB vs published {mb} MB"
                );
            }
        }
    }

    #[test]
    fn latency_model_reproduces_every_published_hit_time() {
        for &(_, _, mb, _, hit) in TABLE2 {
            assert_eq!(l2_hit_latency(mb), hit, "{mb} MB");
        }
        for &(_, mb, _, hit) in TABLE3 {
            assert_eq!(l2_hit_latency(mb), hit, "{mb} MB");
        }
    }

    #[test]
    fn associativity_model_reproduces_every_published_value() {
        for &(_, _, mb, assoc, _) in TABLE2 {
            assert_eq!(l2_associativity(mb * 1024 * 1024, 128), assoc, "{mb} MB");
        }
        for &(_, mb, assoc, _) in TABLE3 {
            assert_eq!(l2_associativity(mb * 1024 * 1024, 128), assoc, "{mb} MB");
        }
    }

    #[test]
    fn too_many_cores_leave_no_cache() {
        assert_eq!(l2_capacity_mb(Technology::Nm90, 7), None);
        assert!(l2_capacity_mb(Technology::Nm45, 27).is_none());
        assert!(l2_capacity_mb(Technology::Nm32, 32).is_some());
    }

    #[test]
    fn derived_config_is_valid_for_all_sizes() {
        for mb in 1..=64u64 {
            let cfg = l2_config(mb, 128);
            assert!(cfg.validate().is_ok(), "{mb} MB: {cfg:?}");
            assert!(cfg.associativity >= 8);
        }
    }

    #[test]
    fn small_scaled_caches_get_sane_geometry() {
        // Scaled-down experiment caches can be well under 1 MB.
        let cfg = CacheConfig::new(64 * 1024, 128, l2_associativity(64 * 1024, 128), 7);
        assert!(cfg.validate().is_ok());
        assert!(cfg.associativity >= 16);
    }

    #[test]
    fn technology_display() {
        assert_eq!(Technology::Nm45.to_string(), "45nm");
        assert_eq!(Technology::Nm32.nanometers(), 32);
    }
}
