//! Property: the event-driven production engine reports **byte-identical**
//! metrics to the retained reference cycle-stepper.
//!
//! Random small series-parallel DAGs (mixed reads/writes over shared and
//! private regions), both scheduler kinds, 1/2/4 cores: every field of
//! [`SimResult`] — cycles, every cache counter, memory-controller stats,
//! per-core busy times, bandwidth utilisation — must match exactly.  This is
//! the executable form of the DESIGN.md §7 argument that the inline
//! micro-step batching and the ownership directory are pure reorderings of
//! unobservable work.

use ccs_dag::synth::{random_computation, SynthParams};
use ccs_sched::SchedulerKind;
use ccs_sim::{simulate_engine, CmpConfig, SimEngine};
use proptest::prelude::*;

/// A small CMP so random working sets actually contend: 4 KB L1s, 64 KB L2.
fn tiny_config(cores: usize) -> CmpConfig {
    let mut cfg = CmpConfig::default_with_cores(if cores <= 1 { 1 } else { 16 })
        .expect("default config exists");
    cfg.num_cores = cores;
    cfg.name = format!("equiv-{cores}");
    cfg.l1 = ccs_cache::CacheConfig::new(4 * 1024, 128, 4, 1);
    cfg.l2 = ccs_cache::CacheConfig::new(64 * 1024, 128, 16, 13);
    cfg
}

/// DAGs stay small (depth ≤ 3, ≤ 16 refs per strand) so the reference
/// engine's per-step heap traffic doesn't dominate the test run.
fn synth_params() -> SynthParams {
    SynthParams {
        max_depth: 3,
        max_par_width: 4,
        max_seq_len: 3,
        max_strand_work: 64,
        max_strand_refs: 16,
        num_regions: 3,
        region_bytes: 4 * 1024,
        shared_ref_prob: 0.6,
        line_size: 128,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn event_driven_equals_reference(
        seed in 0u64..u64::MAX,
        cores_idx in 0usize..3,
        pdf in 0u32..2,
    ) {
        let cores = [1usize, 2, 4][cores_idx];
        let comp = random_computation(seed, &synth_params());
        let kind = if pdf == 0 { SchedulerKind::Pdf } else { SchedulerKind::WorkStealing };
        let cfg = tiny_config(cores);
        let fast = simulate_engine(&comp, &cfg, kind, SimEngine::EventDriven);
        let slow = simulate_engine(&comp, &cfg, kind, SimEngine::Reference);
        prop_assert_eq!(fast, slow);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random three-level hierarchies (DESIGN.md §12): a random core count,
    /// a random equal-cluster partition of it (per-cluster L2 slices), and
    /// a shared L3 behind them.  Core counts past 64 route stores through
    /// the hierarchical sharer masks; every shape must stay byte-identical
    /// to the reference cycle-stepper.
    #[test]
    fn event_driven_equals_reference_on_clustered_l3_hierarchies(
        seed in 0u64..u64::MAX,
        cores in 2usize..=128,
        cluster_pick in 0usize..8,
        pdf in 0u32..2,
    ) {
        let divisors: Vec<usize> = (1..=cores).filter(|&d| cores.is_multiple_of(d)).collect();
        let clusters = divisors[cluster_pick % divisors.len()];
        let comp = random_computation(seed, &synth_params());
        let kind = if pdf == 0 { SchedulerKind::Pdf } else { SchedulerKind::WorkStealing };
        let cfg = tiny_config(cores).clustered(clusters).with_l3_mb(1);
        let fast = simulate_engine(&comp, &cfg, kind, SimEngine::EventDriven);
        let slow = simulate_engine(&comp, &cfg, kind, SimEngine::Reference);
        prop_assert_eq!(fast, slow);
    }
}

/// A deterministic sweep over the same cross-product, so failures reproduce
/// without proptest shrinking and CI always covers every (scheduler, cores)
/// cell even if the random sampler doesn't.  The core counts hit all three
/// coherence paths of the event engine: `p == 1` (no directory, fills
/// skipped unconditionally), `1 < p ≤ MAX_DIRECTORY_CORES` (flat sharer-
/// mask directory), and `p > MAX_DIRECTORY_CORES` (the broadcast
/// fallback, exercised with 65 cores — one past the 64-bit mask).
#[test]
fn engines_agree_across_seeds_schedulers_and_cores() {
    use ccs_cache::directory::MAX_DIRECTORY_CORES;

    let params = synth_params();
    let wide = MAX_DIRECTORY_CORES + 1;
    for seed in 0..12u64 {
        let comp = random_computation(seed, &params);
        // The wide fallback costs O(p) per store in both engines; a third
        // of the seeds keeps the deterministic sweep fast while still
        // covering the cell every run.
        let wide_cores = if seed % 3 == 0 { Some(wide) } else { None };
        for cores in [1usize, 2, 4].into_iter().chain(wide_cores) {
            let cfg = tiny_config(cores);
            for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
                let fast = simulate_engine(&comp, &cfg, kind, SimEngine::EventDriven);
                let slow = simulate_engine(&comp, &cfg, kind, SimEngine::Reference);
                assert_eq!(fast, slow, "seed {seed} / {kind} / {cores} cores");
            }
        }
    }
}

/// The `p > MAX_DIRECTORY_CORES` broadcast fallback on a computation built
/// to *need* it: more strands than the sharer mask has bits, all hammering
/// one shared line with interleaved stores, so remote invalidations (and
/// the unconditional fill re-probes of the fallback) actually fire on a
/// machine wider than the directory supports.
#[test]
fn broadcast_fallback_matches_reference_past_directory_width() {
    use ccs_cache::directory::MAX_DIRECTORY_CORES;
    use ccs_dag::{AddressSpace, ComputationBuilder, GroupMeta};

    let mut b = ComputationBuilder::new(128);
    let mut space = AddressSpace::new();
    let shared = space.alloc(1024);
    let leaves: Vec<_> = (0..MAX_DIRECTORY_CORES + 8)
        .map(|i| {
            let private = space.alloc(512);
            b.strand_with(|t| {
                t.compute(3).read(shared.base, 8);
                t.read_range(private.base, private.bytes, 1);
                if i % 2 == 0 {
                    t.write(shared.base, 8);
                }
                t.read(shared.base, 8);
            })
        })
        .collect();
    let par = b.par(leaves, GroupMeta::labeled("wide"));
    let comp = b.finish(par);

    for cores in [1usize, 4, MAX_DIRECTORY_CORES + 1, MAX_DIRECTORY_CORES + 8] {
        let cfg = tiny_config(cores);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let fast = simulate_engine(&comp, &cfg, kind, SimEngine::EventDriven);
            let slow = simulate_engine(&comp, &cfg, kind, SimEngine::Reference);
            assert_eq!(fast, slow, "{kind} / {cores} cores");
        }
    }
}

/// Geometry lanes are compiled once per sweep point and shared across
/// every scheduler × core-count simulation of it: the computation's
/// memoised line stream hands out the same `Arc`s, and only one packed
/// (L1, L2) pair table exists no matter how many simulations ran.
#[test]
fn geometry_lanes_compile_once_and_are_shared_across_runs() {
    use ccs_dag::CacheGeometry;
    use std::sync::Arc;

    let comp = random_computation(7, &synth_params());
    let stream = comp.line_stream(128);
    assert_eq!(stream.compiled_geometry_pairs(), 0, "nothing compiled yet");

    // tiny_config uses the same L1/L2 geometry at every core count, so the
    // whole schedulers × cores matrix of a sweep point shares one pair.
    for cores in [1usize, 2, 4] {
        let cfg = tiny_config(cores);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let _ = simulate_engine(&comp, &cfg, kind, SimEngine::EventDriven);
        }
    }
    assert!(
        Arc::ptr_eq(&comp.line_stream(128), &stream),
        "all runs reused the memoised stream"
    );
    assert_eq!(
        stream.compiled_geometry_pairs(),
        1,
        "six simulations share one packed (L1, L2) lane table"
    );

    let cfg = tiny_config(2);
    let l1 = CacheGeometry::new(128, cfg.l1.num_sets());
    let l2 = CacheGeometry::new(128, cfg.l2.num_sets());
    let a = stream.geometry_pair(l1, l2);
    let b = stream.geometry_pair(l1, l2);
    assert!(Arc::ptr_eq(&a, &b), "pair lookups share one compiled table");
    assert_eq!(a.l1_geometry(), l1);
    assert_eq!(a.l2_geometry(), l2);
    assert_eq!(a.packed().len(), stream.num_lines());
}

/// The pooled path's remaining special cases, hand-built because the synth
/// generator only emits aligned line-sized refs:
///
/// * byte-granular references that straddle line boundaries (one stream
///   step per touched line, `pre_compute` charged once);
/// * tight same-line re-reads — the event engine's one-entry MRU filter
///   must short-circuit them without moving any metric;
/// * interleaved remote stores to the hammered line, which must drop the
///   victims' filter entries (a stale filter entry would turn a post-
///   invalidation miss into a phantom hit).
#[test]
fn engines_agree_on_straddling_refs_and_mru_hammering() {
    use ccs_dag::{AddressSpace, ComputationBuilder, GroupMeta};

    let mut b = ComputationBuilder::new(128);
    let mut space = AddressSpace::new();
    let shared = space.alloc(4 * 1024);
    let leaves: Vec<_> = (0..6)
        .map(|i| {
            let private = space.alloc(2 * 1024);
            b.strand_with(|t| {
                // Same-line hammering (MRU-filter territory).
                for _ in 0..32 {
                    t.compute(1).read(shared.base, 8);
                }
                // Straddling, byte-granular references.
                t.read(private.base + 120, 16); // crosses a line boundary
                t.write(private.base + 250, 300); // spans three lines
                t.read(shared.base + 64, 1);
                // Stores to the hammered line from every other strand.
                if i % 2 == 0 {
                    t.write(shared.base, 8);
                }
                // Re-read after the (possibly remote) stores.
                for _ in 0..8 {
                    t.compute(1).read(shared.base, 8);
                }
            })
        })
        .collect();
    let par = b.par(leaves, GroupMeta::labeled("hammer"));
    let comp = b.finish(par);

    for cores in [1usize, 2, 4] {
        let cfg = tiny_config(cores);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let fast = simulate_engine(&comp, &cfg, kind, SimEngine::EventDriven);
            let slow = simulate_engine(&comp, &cfg, kind, SimEngine::Reference);
            assert_eq!(fast, slow, "{kind} / {cores} cores");
        }
    }
}
