//! Greedy DAG execution (no cache model).
//!
//! This executor runs a computation DAG on `P` abstract cores under any
//! [`Scheduler`], charging each task its instruction count as its duration.
//! It is the "pure scheduling" view used for schedule analysis (makespan,
//! utilisation, greedy bounds) and for property tests; the cycle-level CMP
//! simulator in `ccs-sim` adds the cache hierarchy and memory bandwidth on
//! top of the same [`Scheduler`] interface.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use ccs_dag::{Dag, TaskId};

use crate::registry::SchedulerSpec;
use crate::scheduler::Scheduler;

/// The outcome of executing a DAG: per-task placement and timing.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Name of the scheduler that produced the schedule.
    pub scheduler: String,
    /// Number of cores used.
    pub num_cores: usize,
    /// Completion time of the last task.
    pub makespan: u64,
    /// Start time of each task.
    pub task_start: Vec<u64>,
    /// Finish time of each task.
    pub task_finish: Vec<u64>,
    /// Core each task ran on.
    pub task_core: Vec<usize>,
    /// Busy cycles per core.
    pub core_busy: Vec<u64>,
}

impl Schedule {
    /// Average core utilisation (busy cycles / (makespan × cores)).
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.num_cores == 0 {
            return 0.0;
        }
        let busy: u64 = self.core_busy.iter().sum();
        busy as f64 / (self.makespan as f64 * self.num_cores as f64)
    }

    /// Speedup over a given sequential execution time.
    pub fn speedup_over(&self, sequential_time: u64) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        sequential_time as f64 / self.makespan as f64
    }

    /// The order in which tasks started (ties broken by core id), useful for
    /// comparing schedules qualitatively.
    pub fn start_order(&self) -> Vec<TaskId> {
        let mut tasks: Vec<TaskId> = (0..self.task_start.len() as u32).map(TaskId).collect();
        tasks.sort_by_key(|t| (self.task_start[t.index()], self.task_core[t.index()]));
        tasks
    }

    /// Check that the schedule is a legal execution of `dag`:
    /// every task runs exactly once, no task starts before its predecessors
    /// finish, and no core runs two tasks at once.
    pub fn validate(&self, dag: &Dag) -> Result<(), String> {
        let n = dag.num_tasks();
        if self.task_start.len() != n {
            return Err("schedule covers a different number of tasks".into());
        }
        for t in (0..n as u32).map(TaskId) {
            if self.task_finish[t.index()] < self.task_start[t.index()] {
                return Err(format!("{t:?} finishes before it starts"));
            }
            for &p in dag.predecessors(t) {
                if self.task_start[t.index()] < self.task_finish[p.index()] {
                    return Err(format!(
                        "{t:?} starts before its predecessor {p:?} finishes"
                    ));
                }
            }
        }
        // Per-core non-overlap.
        let mut per_core: Vec<Vec<(u64, u64)>> = vec![Vec::new(); self.num_cores];
        for t in 0..n {
            per_core[self.task_core[t]].push((self.task_start[t], self.task_finish[t]));
        }
        for (core, intervals) in per_core.iter_mut().enumerate() {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                if w[1].0 < w[0].1 {
                    return Err(format!("core {core} runs two tasks at once"));
                }
            }
        }
        Ok(())
    }
}

/// Execute `dag` on `num_cores` cores under `sched`, with task durations given
/// by `duration`.
///
/// The executor is a discrete-event loop.  It enables tasks in sequential
/// (1DF) order whenever several become ready at once — this is the order a
/// fork-join program would spawn them — and offers work to the core that just
/// completed a task before other idle cores, matching the description of both
/// schedulers in Section 3.
///
/// # Panics
/// Panics if the scheduler is not greedy (returns `None` while tasks are
/// ready) or if it returns a task that is not ready.
pub fn execute_with(
    dag: &Dag,
    num_cores: usize,
    sched: &mut dyn Scheduler,
    mut duration: impl FnMut(TaskId) -> u64,
) -> Schedule {
    assert!(num_cores > 0, "need at least one core");
    let n = dag.num_tasks();
    let mut in_deg: Vec<u32> = (0..n as u32)
        .map(|t| dag.in_degree(TaskId(t)) as u32)
        .collect();
    let mut task_start = vec![0u64; n];
    let mut task_finish = vec![0u64; n];
    let mut task_core = vec![usize::MAX; n];
    let mut core_busy = vec![0u64; num_cores];
    let mut completed = vec![false; n];
    let mut scheduled = vec![false; n];

    sched.init(dag, num_cores);

    // Enable roots in *reverse* sequential order so that deque-based
    // schedulers (which push each enabled task on top) end up with the
    // earliest-sequential task on top — the order a work-first fork-join
    // runtime would reach them.
    let mut roots: Vec<TaskId> = dag.sources();
    roots.sort_by_key(|t| std::cmp::Reverse(dag.seq_rank(*t)));
    for r in roots {
        sched.task_enabled(r, None);
    }

    let mut idle: BTreeSet<usize> = (0..num_cores).collect();
    // Completion events: (finish time, core, task id) as a min-heap.
    let mut events: BinaryHeap<Reverse<(u64, usize, u32)>> = BinaryHeap::new();
    let mut num_completed = 0usize;

    // Assign work to idle cores at time `now`; `first` is offered work first.
    let assign = |now: u64,
                  first: Option<usize>,
                  sched: &mut dyn Scheduler,
                  idle: &mut BTreeSet<usize>,
                  events: &mut BinaryHeap<Reverse<(u64, usize, u32)>>,
                  duration: &mut dyn FnMut(TaskId) -> u64,
                  task_start: &mut [u64],
                  task_finish: &mut [u64],
                  task_core: &mut [usize],
                  core_busy: &mut [u64],
                  scheduled: &mut [bool],
                  in_deg: &[u32]| {
        let mut order: Vec<usize> = Vec::with_capacity(idle.len());
        if let Some(c) = first {
            if idle.contains(&c) {
                order.push(c);
            }
        }
        order.extend(idle.iter().copied().filter(|c| Some(*c) != first));
        for core in order {
            if sched.ready_count() == 0 {
                break;
            }
            let task = sched
                .next_task(core)
                .expect("greedy scheduler returned None while tasks are ready");
            assert_eq!(
                in_deg[task.index()],
                0,
                "scheduler returned a non-ready task"
            );
            assert!(
                !scheduled[task.index()],
                "scheduler returned {task:?} twice"
            );
            scheduled[task.index()] = true;
            let d = duration(task);
            task_start[task.index()] = now;
            task_finish[task.index()] = now + d;
            task_core[task.index()] = core;
            core_busy[core] += d;
            idle.remove(&core);
            events.push(Reverse((now + d, core, task.0)));
        }
    };

    assign(
        0,
        None,
        sched,
        &mut idle,
        &mut events,
        &mut duration,
        &mut task_start,
        &mut task_finish,
        &mut task_core,
        &mut core_busy,
        &mut scheduled,
        &in_deg,
    );

    let mut makespan = 0u64;
    while num_completed < n {
        let Reverse((now, _core, _)) =
            *events.peek().expect("deadlock: no events but tasks remain");
        // Drain every completion at this timestamp before assigning new work,
        // so simultaneous completions all contribute their newly-enabled
        // successors.
        let mut completing_cores: Vec<usize> = Vec::new();
        while let Some(&Reverse((t, core, task))) = events.peek() {
            if t != now {
                break;
            }
            events.pop();
            let task = TaskId(task);
            completed[task.index()] = true;
            num_completed += 1;
            makespan = makespan.max(t);
            idle.insert(core);
            completing_cores.push(core);
            // Enable newly-ready successors in reverse sequential order (see
            // the root-enabling comment above: the earliest-sequential child
            // must end up on top of a deque-based scheduler's local deque).
            let mut newly_ready: Vec<TaskId> = Vec::new();
            for &s in dag.successors(task) {
                in_deg[s.index()] -= 1;
                if in_deg[s.index()] == 0 {
                    newly_ready.push(s);
                }
            }
            newly_ready.sort_by_key(|t| std::cmp::Reverse(dag.seq_rank(*t)));
            for s in newly_ready {
                sched.task_enabled(s, Some(core));
            }
        }
        let first = completing_cores.first().copied();
        assign(
            now,
            first,
            sched,
            &mut idle,
            &mut events,
            &mut duration,
            &mut task_start,
            &mut task_finish,
            &mut task_core,
            &mut core_busy,
            &mut scheduled,
            &in_deg,
        );
        // Greediness check: if there are still ready tasks, every core must be
        // busy.
        debug_assert!(
            sched.ready_count() == 0 || idle.is_empty(),
            "greedy violation: ready tasks with idle cores"
        );
    }

    Schedule {
        scheduler: sched.name().to_string(),
        num_cores,
        makespan,
        task_start,
        task_finish,
        task_core,
        core_busy,
    }
}

/// Execute `dag` with the selected scheduler, charging each task its
/// instruction count ([`Dag::work_of`]) as its duration.
///
/// The scheduler is resolved through the [global
/// registry](crate::registry::SchedulerRegistry::global): pass a
/// [`SchedulerKind`](crate::SchedulerKind), a registered name (`"pdf"`), or a
/// full [`SchedulerSpec`] — user-registered schedulers work unmodified.
pub fn execute(dag: &Dag, num_cores: usize, sched: impl Into<SchedulerSpec>) -> Schedule {
    let mut sched = sched.into().build();
    execute_with(dag, num_cores, sched.as_mut(), |t| dag.work_of(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerKind;
    use ccs_dag::synth::{random_computation, SynthParams};
    use ccs_dag::{ComputationBuilder, Dag, GroupMeta, TaskTrace};

    fn balanced_tree(depth: u32, leaf_work: u64) -> Dag {
        fn build(b: &mut ComputationBuilder, depth: u32, leaf_work: u64) -> ccs_dag::SpNodeId {
            if depth == 0 {
                return b.strand(TaskTrace::compute_only(leaf_work));
            }
            let l = build(b, depth - 1, leaf_work);
            let r = build(b, depth - 1, leaf_work);
            let p = b.par(vec![l, r], GroupMeta::default());
            let join = b.strand(TaskTrace::compute_only(1));
            b.seq(vec![p, join], GroupMeta::default())
        }
        let mut b = ComputationBuilder::new(128);
        let root = build(&mut b, depth, leaf_work);
        let comp = b.finish(root);
        Dag::from_computation(&comp)
    }

    #[test]
    fn single_core_makespan_is_total_work() {
        let dag = balanced_tree(4, 100);
        for kind in [
            SchedulerKind::Pdf,
            SchedulerKind::WorkStealing,
            SchedulerKind::CentralQueue,
        ] {
            let s = execute(&dag, 1, kind);
            assert_eq!(s.makespan, dag.total_work(), "{kind}");
            s.validate(&dag).unwrap();
        }
    }

    #[test]
    fn schedules_are_legal_and_respect_greedy_bound() {
        let dag = balanced_tree(6, 50);
        let w = dag.total_work();
        let d = dag.depth();
        for p in [2usize, 4, 8] {
            for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
                let s = execute(&dag, p, kind);
                s.validate(&dag).unwrap();
                // Greedy (Brent) bound: T_P <= W/P + D.
                assert!(
                    s.makespan <= w / p as u64 + d + 1,
                    "{kind} on {p} cores: {} > {}",
                    s.makespan,
                    w / p as u64 + d
                );
                // And never better than the trivial lower bounds.
                assert!(s.makespan >= w / p as u64);
                assert!(s.makespan >= d);
            }
        }
    }

    #[test]
    fn parallel_execution_speeds_up_balanced_trees() {
        let dag = balanced_tree(6, 200);
        let seq = execute(&dag, 1, SchedulerKind::Pdf).makespan;
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let s = execute(&dag, 8, kind);
            assert!(
                s.speedup_over(seq) > 4.0,
                "{kind} speedup too small: {}",
                s.speedup_over(seq)
            );
        }
    }

    #[test]
    fn pdf_sequential_prefix_property_on_one_core() {
        // On one core PDF reproduces the sequential order exactly.
        let dag = balanced_tree(4, 10);
        let s = execute(&dag, 1, SchedulerKind::Pdf);
        let order = s.start_order();
        assert_eq!(order, dag.seq_order().to_vec());
    }

    #[test]
    fn random_dags_execute_correctly_under_all_schedulers() {
        let params = SynthParams::default();
        for seed in 0..10 {
            let comp = random_computation(seed, &params);
            let dag = Dag::from_computation(&comp);
            for kind in [
                SchedulerKind::Pdf,
                SchedulerKind::WorkStealing,
                SchedulerKind::WorkStealingRandom(seed),
                SchedulerKind::CentralQueue,
            ] {
                let s = execute(&dag, 4, kind);
                s.validate(&dag)
                    .unwrap_or_else(|e| panic!("seed {seed} {kind}: {e}"));
            }
        }
    }

    #[test]
    fn deterministic_schedules() {
        let comp = random_computation(3, &SynthParams::default());
        let dag = Dag::from_computation(&comp);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let a = execute(&dag, 4, kind);
            let b = execute(&dag, 4, kind);
            assert_eq!(a.task_start, b.task_start, "{kind}");
            assert_eq!(a.task_core, b.task_core, "{kind}");
        }
    }

    #[test]
    fn utilization_bounded_by_one() {
        let dag = balanced_tree(5, 30);
        let s = execute(&dag, 4, SchedulerKind::Pdf);
        assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
    }

    #[test]
    fn zero_work_tasks_complete() {
        let mut b = ComputationBuilder::new(128);
        let l = b.nop();
        let r = b.nop();
        let p = b.par(vec![l, r], GroupMeta::default());
        let comp = b.finish(p);
        let dag = Dag::from_computation(&comp);
        let s = execute(&dag, 2, SchedulerKind::WorkStealing);
        assert_eq!(s.makespan, 0);
        s.validate(&dag).unwrap();
    }
}
