//! Analytical results from Section 3 and the machinery to validate them.
//!
//! * [`sequential_misses`] — `M₁`: the misses of a sequential (1DF) execution
//!   with an ideal cache of a given size;
//! * [`pdf_ideal_misses`] — the misses of an instruction-level PDF execution
//!   on `P` cores sharing an ideal cache, the setting of **Theorem 3.1**:
//!   with shared capacity `≥ C + P·D` the parallel execution incurs at most
//!   `M₁` misses;
//! * [`MergesortModel`] — the closed-form Mergesort miss model
//!   (`M_pdf ≈ (N/B)·log(N/C_P)`, `M_ws ≈ M_pdf + (N/B)·log P`).

use ccs_cache::IdealCache;
use ccs_dag::{Computation, Dag, TaskId};

/// `M₁`: number of misses of the sequential (1DF) execution of `comp` with an
/// ideal (fully-associative, LRU) cache of `cache_lines` lines.
pub fn sequential_misses(comp: &Computation, cache_lines: u64) -> u64 {
    let mut cache = IdealCache::new(cache_lines, comp.line_size());
    for (_, r) in comp.sequential_refs() {
        cache.access_ref(&r);
    }
    cache.stats().misses
}

/// Number of misses of an *instruction-level* PDF execution of `comp` on
/// `num_cores` cores sharing an ideal cache of `cache_lines` lines.
///
/// This follows the theoretical model of \[5\]: at every time step the `P`
/// ready tasks with the earliest sequential priority each execute one
/// instruction (tasks may pause when higher-priority work becomes ready).
/// Cache misses do not stall execution — the theorem bounds the number of
/// misses, not the running time.
pub fn pdf_ideal_misses(comp: &Computation, num_cores: usize, cache_lines: u64) -> u64 {
    assert!(num_cores > 0);
    let dag = Dag::from_computation(comp);
    let n = comp.num_tasks();
    let mut cache = IdealCache::new(cache_lines, comp.line_size());

    // Per-task cursor over its instruction stream.
    struct Cursor {
        /// Index of the next trace op.
        op: usize,
        /// Compute instructions still to execute before the op's reference.
        pre_remaining: u64,
        /// Post-trace compute instructions still to execute.
        post_remaining: u64,
        done: bool,
    }
    let mut cursors: Vec<Cursor> = (0..n)
        .map(|i| {
            let trace = comp.trace(TaskId(i as u32));
            let first_pre = if trace.is_empty() {
                0
            } else {
                trace.op(0).pre_compute as u64
            };
            let done = trace.is_empty() && trace.post_compute() == 0;
            Cursor {
                op: 0,
                pre_remaining: first_pre,
                post_remaining: trace.post_compute(),
                done,
            }
        })
        .collect();

    let mut in_deg: Vec<u32> = (0..n as u32)
        .map(|t| dag.in_degree(TaskId(t)) as u32)
        .collect();
    let mut remaining = n;
    // Pre-sort tasks by sequential rank once; each round we scan for the first
    // P ready unfinished tasks in rank order.
    let by_rank: Vec<TaskId> = dag.seq_order().to_vec();

    // Tasks that are trivially done (zero instructions) still need their
    // completion propagated.
    let mut misses = 0u64;
    loop {
        // Propagate completions of zero-length or just-finished tasks.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for i in 0..n {
                if cursors[i].done && in_deg[i] != u32::MAX {
                    // Use MAX as a "completion processed" marker.
                    if in_deg[i] == 0 {
                        for &s in dag.successors(TaskId(i as u32)) {
                            in_deg[s.index()] -= 1;
                        }
                        in_deg[i] = u32::MAX;
                        remaining -= 1;
                        progressed = true;
                    }
                }
            }
        }
        if remaining == 0 {
            break;
        }

        // Select the P earliest-priority ready, unfinished tasks.
        let mut selected = Vec::with_capacity(num_cores);
        for &t in &by_rank {
            if selected.len() == num_cores {
                break;
            }
            let i = t.index();
            if !cursors[i].done && in_deg[i] == 0 {
                selected.push(t);
            }
        }
        assert!(
            !selected.is_empty(),
            "no runnable task but {remaining} remain"
        );

        for t in selected {
            let i = t.index();
            let trace = comp.trace(t);
            let c = &mut cursors[i];
            if c.op < trace.num_refs() {
                if c.pre_remaining > 0 {
                    c.pre_remaining -= 1;
                } else {
                    // Execute the memory reference.
                    let op = trace.op(c.op);
                    misses += cache.access_ref(&op.mem) as u64;
                    c.op += 1;
                    c.pre_remaining = if c.op < trace.num_refs() {
                        trace.op(c.op).pre_compute as u64
                    } else {
                        0
                    };
                    if c.op == trace.num_refs() && c.post_remaining == 0 {
                        c.done = true;
                    }
                }
            } else if c.post_remaining > 0 {
                c.post_remaining -= 1;
                if c.post_remaining == 0 {
                    c.done = true;
                }
            } else {
                c.done = true;
            }
        }
    }
    misses
}

/// The cache capacity Theorem 3.1 requires for the PDF bound: `C + P·D`
/// expressed in lines, where `C` is the sequential cache size in lines and
/// `D` the weighted depth of the DAG (each instruction can bring at most one
/// new line into the cache).
pub fn theorem31_capacity(comp: &Computation, seq_cache_lines: u64, num_cores: usize) -> u64 {
    let dag = Dag::from_computation(comp);
    seq_cache_lines + num_cores as u64 * dag.depth()
}

/// Closed-form Mergesort miss model of Section 3.
///
/// For sorting `n_items` items of `item_bytes` bytes with cache lines of
/// `line_bytes` bytes:
///
/// * sequential with cache `C`:  `M₁ ≈ (N/B) · log₂(N_bytes / C)`
/// * PDF with shared cache `C_P`: `M_pdf ≈ (N/B) · log₂(N_bytes / C_P)`
/// * WS on `P` cores:            `M_ws ≈ M_pdf + (N/B) · log₂ P`
///
/// (Counts are clamped at the compulsory-miss floor `N/B`.)
#[derive(Clone, Copy, Debug)]
pub struct MergesortModel {
    /// Number of items to sort.
    pub n_items: u64,
    /// Bytes per item.
    pub item_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
}

impl MergesortModel {
    /// Items per cache line (`B` in the paper's formulas).
    pub fn items_per_line(&self) -> f64 {
        self.line_bytes as f64 / self.item_bytes as f64
    }

    /// Total bytes sorted.
    pub fn total_bytes(&self) -> u64 {
        self.n_items * self.item_bytes
    }

    fn line_fetches(&self) -> f64 {
        self.n_items as f64 / self.items_per_line()
    }

    /// `M₁` / `M_pdf` for an (ideal) cache of `cache_bytes` bytes.
    pub fn misses_with_cache(&self, cache_bytes: u64) -> f64 {
        let levels = (self.total_bytes() as f64 / cache_bytes as f64)
            .log2()
            .max(1.0);
        self.line_fetches() * levels
    }

    /// `M_ws` for `num_cores` cores sharing `cache_bytes` bytes.
    pub fn ws_misses(&self, cache_bytes: u64, num_cores: usize) -> f64 {
        self.misses_with_cache(cache_bytes) + self.line_fetches() * (num_cores as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::synth::{random_computation, SynthParams};

    #[test]
    fn sequential_misses_at_least_footprint() {
        let comp = random_computation(11, &SynthParams::default());
        let m = sequential_misses(&comp, 1 << 20);
        // With a huge cache, misses equal the number of distinct lines (cold
        // misses only); with a 1-line cache they equal... at least that.
        let m_small = sequential_misses(&comp, 1);
        assert!(m_small >= m);
        assert!(m > 0);
    }

    #[test]
    fn pdf_parallel_misses_bounded_by_sequential_theorem31() {
        // Theorem 3.1: with shared capacity >= C + P*D, PDF incurs at most M1
        // misses (M1 measured with capacity C).
        let params = SynthParams {
            max_depth: 4,
            max_strand_work: 20,
            max_strand_refs: 16,
            num_regions: 3,
            region_bytes: 4 * 1024,
            ..SynthParams::default()
        };
        for seed in 0..8 {
            let comp = random_computation(seed, &params);
            let c_lines = 16u64;
            let m1 = sequential_misses(&comp, c_lines);
            for p in [2usize, 4] {
                let cp_lines = theorem31_capacity(&comp, c_lines, p);
                let mp = pdf_ideal_misses(&comp, p, cp_lines);
                assert!(
                    mp <= m1,
                    "seed {seed}, P={p}: PDF misses {mp} exceed sequential {m1}"
                );
            }
        }
    }

    #[test]
    fn pdf_single_core_equals_sequential() {
        let comp = random_computation(5, &SynthParams::default());
        for lines in [4u64, 64, 1024] {
            assert_eq!(
                pdf_ideal_misses(&comp, 1, lines),
                sequential_misses(&comp, lines),
                "cache of {lines} lines"
            );
        }
    }

    #[test]
    fn mergesort_model_monotonic_in_cache_size() {
        let m = MergesortModel {
            n_items: 32 << 20,
            item_bytes: 4,
            line_bytes: 128,
        };
        let small = m.misses_with_cache(1 << 20);
        let large = m.misses_with_cache(32 << 20);
        assert!(small > large);
        // WS pays an extra (N/B) log2 P misses.
        let pdf = m.misses_with_cache(8 << 20);
        let ws = m.ws_misses(8 << 20, 8);
        let extra = ws - pdf;
        let expect = m.line_fetches() * 3.0;
        assert!((extra - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn mergesort_model_basics() {
        let m = MergesortModel {
            n_items: 1 << 20,
            item_bytes: 4,
            line_bytes: 128,
        };
        assert_eq!(m.items_per_line(), 32.0);
        assert_eq!(m.total_bytes(), 4 << 20);
        assert!(m.misses_with_cache(4 << 20) >= m.line_fetches());
    }
}
