//! The open scheduler registry.
//!
//! The experiment layer identifies schedulers by *name* so that sweeps,
//! reports and command lines stay data-driven.  This module maps those names
//! onto concrete [`Scheduler`] instances through an open registry:
//!
//! * [`SchedulerFactory`] — how a named scheduler is instantiated;
//! * [`SchedulerRegistry`] — a name → factory table.  [`SchedulerRegistry::global`]
//!   is the process-wide instance, pre-populated with the built-in
//!   schedulers (`"pdf"`, `"ws"`, `"ws-rand"`, `"central"`);
//! * [`SchedulerSpec`] — a serialisable "which scheduler" value (name +
//!   instantiation parameters).  Every executor entry point
//!   ([`crate::execute`], `ccs_sim::simulate`, the experiment layer) accepts
//!   `impl Into<SchedulerSpec>`, so a [`SchedulerKind`], a `"pdf"` string
//!   literal, or a fully parameterised spec all work.
//!
//! User-defined schedulers plug into *every* driver without touching crate
//! internals:
//!
//! ```
//! use ccs_dag::{ComputationBuilder, Dag, GroupMeta, TaskTrace};
//! use ccs_sched::registry::SchedulerRegistry;
//! use ccs_sched::{execute, CentralQueue};
//!
//! // Register a (trivial) custom scheduler under a new name…
//! SchedulerRegistry::global().register_fn("my-fifo", |_params| {
//!     Box::new(CentralQueue::new())
//! });
//!
//! // …and drive it by name through the standard executor.
//! let mut b = ComputationBuilder::new(128);
//! let s = b.strand(TaskTrace::compute_only(10));
//! let root = b.seq(vec![s], GroupMeta::default());
//! let dag = Dag::from_computation(&b.finish(root));
//! let schedule = execute(&dag, 2, "my-fifo");
//! assert_eq!(schedule.makespan, 10);
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::scheduler::{Scheduler, SchedulerKind};

/// Instantiation parameters passed to a [`SchedulerFactory`].
///
/// Only randomized schedulers currently consume anything (`seed`); the struct
/// is non-exhaustive in spirit — custom factories are free to ignore it.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct SchedulerParams {
    /// RNG seed for randomized schedulers (`None` = the scheduler's default).
    pub seed: Option<u64>,
}

impl SchedulerParams {
    /// Parameters carrying an RNG seed.
    pub fn seeded(seed: u64) -> Self {
        SchedulerParams { seed: Some(seed) }
    }
}

/// Builds [`Scheduler`] instances for one registered name.
pub trait SchedulerFactory: Send + Sync {
    /// The canonical registry name (e.g. `"pdf"`).
    fn id(&self) -> &str;

    /// Instantiate a fresh scheduler.
    fn build(&self, params: &SchedulerParams) -> Box<dyn Scheduler>;
}

/// A [`SchedulerFactory`] wrapping a closure (see
/// [`SchedulerRegistry::register_fn`]).
struct FnFactory<F> {
    id: String,
    build: F,
}

impl<F> SchedulerFactory for FnFactory<F>
where
    F: Fn(&SchedulerParams) -> Box<dyn Scheduler> + Send + Sync,
{
    fn id(&self) -> &str {
        &self.id
    }

    fn build(&self, params: &SchedulerParams) -> Box<dyn Scheduler> {
        (self.build)(params)
    }
}

/// Error returned when a scheduler name has no registered factory.
#[derive(Clone, Debug)]
pub struct UnknownScheduler {
    /// The name that failed to resolve.
    pub name: String,
    /// The names that *are* registered, for the error message.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheduler {:?} (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownScheduler {}

/// A name → [`SchedulerFactory`] table.
pub struct SchedulerRegistry {
    factories: RwLock<BTreeMap<String, Arc<dyn SchedulerFactory>>>,
}

impl SchedulerRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        SchedulerRegistry {
            factories: RwLock::new(BTreeMap::new()),
        }
    }

    /// A registry pre-populated with the built-in schedulers: `"pdf"`,
    /// `"ws"`, `"ws-rand"` and `"central"`.
    pub fn with_builtins() -> Self {
        let registry = Self::empty();
        registry.register_fn("pdf", |_| Box::new(crate::pdf::Pdf::new()));
        registry.register_fn("ws", |_| Box::new(crate::ws::WorkStealing::new()));
        registry.register_fn("ws-rand", |params| {
            Box::new(crate::ws::WorkStealing::with_random_victims(
                params.seed.unwrap_or(0),
            ))
        });
        registry.register_fn("central", |_| Box::new(crate::central::CentralQueue::new()));
        registry
    }

    /// The process-wide registry used by [`SchedulerSpec::build`] and every
    /// name-based executor entry point.  Created on first use with the
    /// built-ins registered.
    pub fn global() -> &'static SchedulerRegistry {
        static GLOBAL: OnceLock<SchedulerRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SchedulerRegistry::with_builtins)
    }

    /// Register a factory under its [`SchedulerFactory::id`].  Returns the
    /// factory previously registered under that name, if any (last
    /// registration wins, so tests can shadow built-ins).
    ///
    /// Names should stick to the spec grammar (`[A-Za-z0-9_.-/]`, no `@`):
    /// registration accepts any string, but a name outside the grammar
    /// cannot be written as a spec string — `"x@2"` would parse as scheduler
    /// `"x"` with seed 2, and a name with spaces or `:` fails
    /// [`SchedulerSpec::parse`] — so such schedulers are only reachable
    /// through explicitly constructed [`SchedulerSpec`] values.
    pub fn register(
        &self,
        factory: Arc<dyn SchedulerFactory>,
    ) -> Option<Arc<dyn SchedulerFactory>> {
        let name = factory.id().to_string();
        self.factories
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name, factory)
    }

    /// Register a closure as the factory for `name`.
    pub fn register_fn<F>(&self, name: impl Into<String>, build: F)
    where
        F: Fn(&SchedulerParams) -> Box<dyn Scheduler> + Send + Sync + 'static,
    {
        self.register(Arc::new(FnFactory {
            id: name.into(),
            build,
        }));
    }

    /// Whether `name` has a registered factory.
    pub fn contains(&self, name: &str) -> bool {
        self.factories
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Instantiate the scheduler registered under `name`.
    pub fn build(
        &self,
        name: &str,
        params: &SchedulerParams,
    ) -> Result<Box<dyn Scheduler>, UnknownScheduler> {
        let factory = self
            .factories
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned();
        match factory {
            Some(f) => Ok(f.build(params)),
            None => Err(UnknownScheduler {
                name: name.to_string(),
                known: self.names(),
            }),
        }
    }
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl std::fmt::Debug for SchedulerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// A serialisable "which scheduler" value: registry name plus instantiation
/// parameters.  This is what experiment records store and what every executor
/// entry point accepts (via `impl Into<SchedulerSpec>`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SchedulerSpec {
    /// Registry name (e.g. `"pdf"`).
    pub name: String,
    /// Instantiation parameters.
    pub params: SchedulerParams,
}

impl SchedulerSpec {
    /// A spec for the scheduler registered under `name`, with default
    /// parameters.
    pub fn new(name: impl Into<String>) -> Self {
        SchedulerSpec {
            name: name.into(),
            params: SchedulerParams::default(),
        }
    }

    /// Attach an RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.params.seed = Some(seed);
        self
    }

    /// Parse a scheduler spec string: a plain registry name (`"pdf"`), the
    /// shared spec grammar with the `seed` parameter (`"ws-rand:seed=7"`), or
    /// the display form (`"ws-rand@7"`, the inverse of
    /// [`SchedulerSpec`]'s `Display`).
    ///
    /// The name is *not* checked against the registry here — that happens at
    /// [`SchedulerSpec::build`] time, so specs can be parsed before their
    /// scheduler is registered.
    pub fn parse(input: &str) -> Result<Self, crate::spec::SpecParseError> {
        let input = input.trim();
        if let Some((name, seed)) = input.split_once('@') {
            if !crate::spec::is_valid_word(name) {
                return Err(crate::spec::SpecParseError {
                    input: input.to_string(),
                    message: "name must be non-empty and use only [A-Za-z0-9_.-/]".to_string(),
                });
            }
            let seed: u64 = seed.parse().map_err(|_| crate::spec::SpecParseError {
                input: input.to_string(),
                message: format!("seed {seed:?} is not a u64"),
            })?;
            return Ok(SchedulerSpec::new(name).with_seed(seed));
        }
        let parsed = crate::spec::parse_spec(input)?;
        let mut spec = SchedulerSpec::new(parsed.name);
        for (key, value) in &parsed.params {
            match key.as_str() {
                "seed" => {
                    let seed: u64 = value.parse().map_err(|_| crate::spec::SpecParseError {
                        input: input.to_string(),
                        message: format!("seed {value:?} is not a u64"),
                    })?;
                    spec.params.seed = Some(seed);
                }
                other => {
                    return Err(crate::spec::SpecParseError {
                        input: input.to_string(),
                        message: format!("unknown scheduler parameter {other:?} (known: seed)"),
                    });
                }
            }
        }
        Ok(spec)
    }

    /// Parse *and validate* a scheduler spec string against the
    /// [global registry](SchedulerRegistry::global), returning a typed
    /// [`SpecError`](crate::spec::SpecError) on either failure.
    ///
    /// This is the entry point for untrusted input (daemon requests,
    /// config files): unlike [`SchedulerSpec::parse`] it also rejects
    /// unregistered names, and unlike [`SchedulerSpec::build`] it never
    /// panics.
    pub fn resolve(input: &str) -> Result<Self, crate::spec::SpecError> {
        let spec = SchedulerSpec::parse(input)?;
        let registry = SchedulerRegistry::global();
        if !registry.contains(&spec.name) {
            return Err(crate::spec::SpecError::unknown(
                "scheduler",
                spec.name,
                registry.names(),
            ));
        }
        Ok(spec)
    }

    /// Instantiate through the [global registry](SchedulerRegistry::global).
    ///
    /// # Panics
    /// Panics if the name is not registered; use [`SchedulerSpec::try_build`]
    /// to handle that case.
    pub fn build(&self) -> Box<dyn Scheduler> {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Instantiate through the global registry, reporting unknown names.
    pub fn try_build(&self) -> Result<Box<dyn Scheduler>, UnknownScheduler> {
        SchedulerRegistry::global().build(&self.name, &self.params)
    }
}

impl From<SchedulerKind> for SchedulerSpec {
    fn from(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::WorkStealingRandom(seed) => {
                SchedulerSpec::new(kind.name()).with_seed(seed)
            }
            _ => SchedulerSpec::new(kind.name()),
        }
    }
}

impl From<&str> for SchedulerSpec {
    /// Parse via [`SchedulerSpec::parse`].
    ///
    /// # Panics
    /// Panics when the string does not match the spec grammar; use
    /// [`SchedulerSpec::parse`] to handle that case.
    fn from(spec: &str) -> Self {
        SchedulerSpec::parse(spec).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl From<String> for SchedulerSpec {
    /// Parse via [`SchedulerSpec::parse`] (see `From<&str>`).
    fn from(spec: String) -> Self {
        SchedulerSpec::from(spec.as_str())
    }
}

impl From<&SchedulerSpec> for SchedulerSpec {
    fn from(spec: &SchedulerSpec) -> Self {
        spec.clone()
    }
}

impl std::fmt::Display for SchedulerSpec {
    /// `"ws-rand@7"` when seeded, the plain name otherwise — the label used
    /// in experiment output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.params.seed {
            Some(seed) => write!(f, "{}@{}", self.name, seed),
            None => f.write_str(&self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Scheduler;
    use ccs_dag::{Dag, TaskId};

    #[test]
    fn global_registry_has_builtins() {
        let names = SchedulerRegistry::global().names();
        for expect in ["pdf", "ws", "ws-rand", "central"] {
            assert!(
                names.contains(&expect.to_string()),
                "{expect} missing from {names:?}"
            );
        }
    }

    #[test]
    fn builtin_specs_build_matching_schedulers() {
        assert_eq!(SchedulerSpec::new("pdf").build().name(), "pdf");
        assert_eq!(SchedulerSpec::new("ws").build().name(), "ws");
        assert_eq!(
            SchedulerSpec::new("ws-rand").with_seed(3).build().name(),
            "ws-rand"
        );
        assert_eq!(SchedulerSpec::new("central").build().name(), "central");
    }

    #[test]
    fn unknown_name_is_reported() {
        let err = match SchedulerSpec::new("no-such-sched").try_build() {
            Ok(_) => panic!("unknown scheduler must not build"),
            Err(e) => e,
        };
        assert_eq!(err.name, "no-such-sched");
        assert!(err.known.contains(&"pdf".to_string()));
        assert!(err.to_string().contains("no-such-sched"));
    }

    #[test]
    fn kind_conversion_preserves_seed() {
        let spec = SchedulerSpec::from(SchedulerKind::WorkStealingRandom(42));
        assert_eq!(spec.name, "ws-rand");
        assert_eq!(spec.params.seed, Some(42));
        assert_eq!(spec.to_string(), "ws-rand@42");
        assert_eq!(SchedulerSpec::from(SchedulerKind::Pdf).to_string(), "pdf");
    }

    #[test]
    fn spec_strings_parse_and_round_trip() {
        assert_eq!(
            SchedulerSpec::parse("pdf").unwrap(),
            SchedulerSpec::new("pdf")
        );
        assert_eq!(
            SchedulerSpec::parse("ws-rand:seed=7").unwrap(),
            SchedulerSpec::new("ws-rand").with_seed(7)
        );
        // The display form parses back to the same spec.
        let spec = SchedulerSpec::new("ws-rand").with_seed(42);
        assert_eq!(SchedulerSpec::parse(&spec.to_string()).unwrap(), spec);
        // From<&str> goes through the parser.
        assert_eq!(SchedulerSpec::from("ws-rand:seed=3").params.seed, Some(3));
        assert!(SchedulerSpec::parse("ws-rand:victims=2").is_err());
        assert!(SchedulerSpec::parse("ws-rand@many").is_err());
        assert!(SchedulerSpec::parse("").is_err());
    }

    #[test]
    fn resolve_returns_typed_errors_not_panics() {
        use crate::spec::SpecError;
        assert_eq!(
            SchedulerSpec::resolve("pdf").unwrap(),
            SchedulerSpec::new("pdf")
        );
        assert_eq!(
            SchedulerSpec::resolve("ws-rand@7").unwrap().params.seed,
            Some(7)
        );
        let err = SchedulerSpec::resolve("pddf").unwrap_err();
        assert!(matches!(
            err,
            SpecError::Unknown {
                axis: "scheduler",
                ..
            }
        ));
        assert!(err.to_string().contains("did you mean \"pdf\""), "{err}");
        let err = SchedulerSpec::resolve("w s").unwrap_err();
        assert!(matches!(err, SpecError::Parse(_)));
    }

    /// A scheduler that always hands out the most recently enabled task.
    struct LifoStack {
        stack: Vec<TaskId>,
    }

    impl Scheduler for LifoStack {
        fn init(&mut self, _dag: &Dag, _num_cores: usize) {
            self.stack.clear();
        }
        fn task_enabled(&mut self, task: TaskId, _enabling_core: Option<usize>) {
            self.stack.push(task);
        }
        fn next_task(&mut self, _core: usize) -> Option<TaskId> {
            self.stack.pop()
        }
        fn ready_count(&self) -> usize {
            self.stack.len()
        }
        fn name(&self) -> &'static str {
            "lifo-test"
        }
    }

    #[test]
    fn custom_factory_round_trips_through_registry() {
        let registry = SchedulerRegistry::empty();
        assert!(!registry.contains("lifo-test"));
        registry.register_fn("lifo-test", |_| Box::new(LifoStack { stack: Vec::new() }));
        assert!(registry.contains("lifo-test"));
        let sched = registry
            .build("lifo-test", &SchedulerParams::default())
            .unwrap();
        assert_eq!(sched.name(), "lifo-test");
    }

    #[test]
    fn registration_replaces_and_reports_previous() {
        let registry = SchedulerRegistry::empty();
        registry.register_fn("x", |_| Box::new(LifoStack { stack: Vec::new() }));
        let prev = registry.register(Arc::new(FnFactory {
            id: "x".to_string(),
            build: |_: &SchedulerParams| {
                Box::new(crate::central::CentralQueue::new()) as Box<dyn Scheduler>
            },
        }));
        assert!(prev.is_some());
        assert_eq!(
            registry
                .build("x", &SchedulerParams::default())
                .unwrap()
                .name(),
            "central"
        );
    }
}
