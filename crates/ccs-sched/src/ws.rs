//! Work Stealing (WS) scheduling (Section 3, \[10\]).
//!
//! WS maintains a double-ended work queue per core.  When a task forks new
//! work, the new tasks are placed on the *top* of the forking core's deque.
//! When a core finishes a task it pops from the top of its own deque; if the
//! deque is empty it scans the other cores and steals from the *bottom* of
//! the first non-empty deque it finds.  WS gives excellent locality *within*
//! a core (the tasks in one deque are related), but different cores tend to
//! work on disjoint parts of the DAG and therefore have disjoint working
//! sets — which is exactly what constructive cache sharing wants to avoid.

use std::collections::VecDeque;

use ccs_dag::{Dag, TaskId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::scheduler::Scheduler;

/// Victim-selection policy for stealing.
#[derive(Debug)]
enum VictimPolicy {
    /// Scan cores round-robin starting after the thief (deterministic — the
    /// default, so simulation results are exactly reproducible).
    RoundRobin,
    /// Pick random victims, as classical WS implementations do.
    Random(SmallRng),
}

/// The Work Stealing scheduler.
#[derive(Debug)]
pub struct WorkStealing {
    /// One deque per core.  Front = top (local LIFO end), back = bottom
    /// (steal end).
    deques: Vec<VecDeque<TaskId>>,
    victim_policy: VictimPolicy,
    ready: usize,
    /// Number of successful steals (for diagnostics / tests).
    steals: u64,
}

impl Default for WorkStealing {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkStealing {
    /// WS with deterministic round-robin victim selection.
    pub fn new() -> Self {
        WorkStealing {
            deques: Vec::new(),
            victim_policy: VictimPolicy::RoundRobin,
            ready: 0,
            steals: 0,
        }
    }

    /// WS with seeded random victim selection.
    pub fn with_random_victims(seed: u64) -> Self {
        WorkStealing {
            deques: Vec::new(),
            victim_policy: VictimPolicy::Random(SmallRng::seed_from_u64(seed)),
            ready: 0,
            steals: 0,
        }
    }

    /// Number of successful steals so far.
    pub fn steal_count(&self) -> u64 {
        self.steals
    }

    fn steal(&mut self, thief: usize) -> Option<TaskId> {
        let p = self.deques.len();
        if p <= 1 {
            return None;
        }
        let start = match &mut self.victim_policy {
            VictimPolicy::RoundRobin => (thief + 1) % p,
            VictimPolicy::Random(rng) => rng.gen_range(0..p),
        };
        for i in 0..p {
            let victim = (start + i) % p;
            if victim == thief {
                continue;
            }
            if let Some(task) = self.deques[victim].pop_back() {
                self.steals += 1;
                return Some(task);
            }
        }
        None
    }
}

impl Scheduler for WorkStealing {
    fn init(&mut self, _dag: &Dag, num_cores: usize) {
        self.deques = vec![VecDeque::new(); num_cores.max(1)];
        self.ready = 0;
        self.steals = 0;
    }

    fn task_enabled(&mut self, task: TaskId, enabling_core: Option<usize>) {
        // Tasks ready at the start of the computation (DAG roots) are placed
        // on core 0's deque, matching a program whose initial thread starts on
        // core 0 and forks from there.
        let core = enabling_core.unwrap_or(0).min(self.deques.len() - 1);
        // "When forking a new thread, this new thread is placed on the top of
        // the local queue."  The executor enables simultaneously-ready
        // siblings in reverse sequential order, so after all the pushes the
        // *earliest-sequential* sibling sits on top: the forking core then
        // dives into the first child (exactly what a work-first fork-join
        // runtime does) while thieves steal the later children — whole
        // disjoint sub-trees — from the bottom.  On one core this makes WS
        // execute the sequential order.
        self.deques[core].push_front(task);
        self.ready += 1;
    }

    fn next_task(&mut self, core: usize) -> Option<TaskId> {
        let core = core.min(self.deques.len().saturating_sub(1));
        let task = self.deques[core].pop_front().or_else(|| self.steal(core));
        if task.is_some() {
            self.ready -= 1;
        }
        task
    }

    fn ready_count(&self) -> usize {
        self.ready
    }

    fn name(&self) -> &'static str {
        // The two victim-selection variants must be distinguishable in
        // experiment output (they are distinct registry entries).
        match self.victim_policy {
            VictimPolicy::RoundRobin => "ws",
            VictimPolicy::Random(_) => "ws-rand",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{ComputationBuilder, GroupMeta, TaskTrace};

    fn fan_out(width: u32) -> Dag {
        let mut b = ComputationBuilder::new(128);
        let leaves: Vec<_> = (0..width)
            .map(|_| b.strand(TaskTrace::compute_only(1)))
            .collect();
        let root = b.par(leaves, GroupMeta::default());
        let comp = b.finish(root);
        Dag::from_computation(&comp)
    }

    #[test]
    fn local_pop_is_lifo() {
        let dag = fan_out(4);
        let mut ws = WorkStealing::new();
        ws.init(&dag, 2);
        // Core 0 forks T0..T3; the executor enables them in reverse sequential
        // order (T3 first), so after the pushes T0 is on top and the core
        // works on the earliest child first.
        for t in (0..4).rev() {
            ws.task_enabled(TaskId(t), Some(0));
        }
        assert_eq!(ws.next_task(0), Some(TaskId(0)));
        assert_eq!(ws.next_task(0), Some(TaskId(1)));
    }

    #[test]
    fn steal_takes_from_bottom() {
        let dag = fan_out(4);
        let mut ws = WorkStealing::new();
        ws.init(&dag, 2);
        for t in (0..4).rev() {
            ws.task_enabled(TaskId(t), Some(0));
        }
        // Core 1 has an empty deque; it steals the *bottom* (latest-spawned)
        // task of core 0 — the biggest chunk of remaining work.
        assert_eq!(ws.next_task(1), Some(TaskId(3)));
        assert_eq!(ws.steal_count(), 1);
        // Core 0 still pops its top.
        assert_eq!(ws.next_task(0), Some(TaskId(0)));
    }

    #[test]
    fn exhausted_deques_return_none() {
        let dag = fan_out(2);
        let mut ws = WorkStealing::new();
        ws.init(&dag, 3);
        ws.task_enabled(TaskId(0), Some(1));
        assert!(ws.next_task(2).is_some());
        assert!(ws.next_task(2).is_none());
        assert_eq!(ws.ready_count(), 0);
    }

    #[test]
    fn roots_go_to_core_zero() {
        let dag = fan_out(2);
        let mut ws = WorkStealing::new();
        ws.init(&dag, 4);
        ws.task_enabled(TaskId(0), None);
        ws.task_enabled(TaskId(1), None);
        // Core 3 must steal them (they live on core 0's deque).
        let before = ws.steal_count();
        assert!(ws.next_task(3).is_some());
        assert_eq!(ws.steal_count(), before + 1);
    }

    #[test]
    fn random_victim_policy_is_seeded_and_deterministic() {
        let dag = fan_out(8);
        let run = |seed| {
            let mut ws = WorkStealing::with_random_victims(seed);
            ws.init(&dag, 4);
            for t in 0..8 {
                ws.task_enabled(TaskId(t), Some((t % 4) as usize));
            }
            let mut order = Vec::new();
            for core in [2usize, 3, 1, 0, 2, 3, 1, 0] {
                order.push(ws.next_task(core).unwrap());
            }
            order
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
    }

    #[test]
    fn single_core_never_steals() {
        let dag = fan_out(4);
        let mut ws = WorkStealing::new();
        ws.init(&dag, 1);
        for t in 0..4 {
            ws.task_enabled(TaskId(t), Some(0));
        }
        for _ in 0..4 {
            assert!(ws.next_task(0).is_some());
        }
        assert_eq!(ws.steal_count(), 0);
    }
}
