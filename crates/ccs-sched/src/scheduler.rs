//! The greedy-scheduler interface shared by PDF, WS and the baselines.
//!
//! Both the standalone executor ([`crate::exec`]) and the cycle-level CMP
//! simulator (`ccs-sim`) drive schedulers through this trait: the driver tells
//! the scheduler which tasks have become *ready* (all predecessors completed)
//! and which core enabled them, and asks for work on behalf of idle cores.
//! A scheduler is *greedy* when [`Scheduler::next_task`] returns a task
//! whenever any ready task exists — all the schedulers in this crate are
//! greedy, which the executor asserts.

use ccs_dag::{Dag, TaskId};

/// A greedy task scheduler for computation DAGs.
pub trait Scheduler {
    /// Called once before execution starts.  `dag` describes the computation,
    /// `num_cores` the number of cores work will be requested for.
    fn init(&mut self, dag: &Dag, num_cores: usize);

    /// Inform the scheduler that `task` has become ready.
    ///
    /// `enabling_core` is the core that completed the task's last outstanding
    /// predecessor (the "forking" core in fork-join terms), or `None` for
    /// tasks that are ready at the start of the computation (DAG roots).
    fn task_enabled(&mut self, task: TaskId, enabling_core: Option<usize>);

    /// Ask for a task to run on `core`.  Must return `Some` whenever any task
    /// is ready (greediness); the executor treats a `None` returned while
    /// ready tasks exist as a scheduler bug.
    fn next_task(&mut self, core: usize) -> Option<TaskId>;

    /// Number of ready tasks currently queued.
    fn ready_count(&self) -> usize;

    /// Short human-readable name ("pdf", "ws", ...), used in experiment
    /// output.
    fn name(&self) -> &'static str;
}

/// The built-in schedulers — a convenience enum kept as a thin compatibility
/// shim over the open [scheduler registry](crate::registry).
///
/// New code (and anything that wants user-defined schedulers) should use
/// [`crate::registry::SchedulerSpec`]; every executor entry point accepts
/// `impl Into<SchedulerSpec>`, and `SchedulerKind` converts losslessly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Parallel Depth First.
    Pdf,
    /// Work Stealing with deterministic round-robin victim selection.
    WorkStealing,
    /// Work Stealing with seeded random victim selection.
    WorkStealingRandom(u64),
    /// Central FIFO queue (breadth-first-ish baseline, not in the paper).
    CentralQueue,
}

impl SchedulerKind {
    /// Instantiate the scheduler by resolving this kind's name through the
    /// [global registry](crate::registry::SchedulerRegistry::global).
    pub fn build(self) -> Box<dyn Scheduler> {
        crate::registry::SchedulerSpec::from(self).build()
    }

    /// Stable short name — the registry name this kind resolves to.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Pdf => "pdf",
            SchedulerKind::WorkStealing => "ws",
            SchedulerKind::WorkStealingRandom(_) => "ws-rand",
            SchedulerKind::CentralQueue => "central",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_matching_names() {
        // Every kind's registry name and its built scheduler's name agree —
        // in particular the two WS variants are distinguishable in output.
        assert_eq!(SchedulerKind::Pdf.build().name(), "pdf");
        assert_eq!(SchedulerKind::WorkStealing.build().name(), "ws");
        assert_eq!(
            SchedulerKind::WorkStealingRandom(1).build().name(),
            "ws-rand"
        );
        assert_eq!(SchedulerKind::CentralQueue.build().name(), "central");
        assert_eq!(SchedulerKind::Pdf.to_string(), "pdf");
        assert_eq!(SchedulerKind::WorkStealingRandom(7).name(), "ws-rand");
    }
}
