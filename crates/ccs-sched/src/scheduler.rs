//! The greedy-scheduler interface shared by PDF, WS and the baselines.
//!
//! Both the standalone executor ([`crate::exec`]) and the cycle-level CMP
//! simulator (`ccs-sim`) drive schedulers through this trait: the driver tells
//! the scheduler which tasks have become *ready* (all predecessors completed)
//! and which core enabled them, and asks for work on behalf of idle cores.
//! A scheduler is *greedy* when [`Scheduler::next_task`] returns a task
//! whenever any ready task exists — all the schedulers in this crate are
//! greedy, which the executor asserts.

use ccs_dag::{Dag, TaskId};

/// A greedy task scheduler for computation DAGs.
pub trait Scheduler {
    /// Called once before execution starts.  `dag` describes the computation,
    /// `num_cores` the number of cores work will be requested for.
    fn init(&mut self, dag: &Dag, num_cores: usize);

    /// Inform the scheduler that `task` has become ready.
    ///
    /// `enabling_core` is the core that completed the task's last outstanding
    /// predecessor (the "forking" core in fork-join terms), or `None` for
    /// tasks that are ready at the start of the computation (DAG roots).
    fn task_enabled(&mut self, task: TaskId, enabling_core: Option<usize>);

    /// Ask for a task to run on `core`.  Must return `Some` whenever any task
    /// is ready (greediness); the executor treats a `None` returned while
    /// ready tasks exist as a scheduler bug.
    fn next_task(&mut self, core: usize) -> Option<TaskId>;

    /// Number of ready tasks currently queued.
    fn ready_count(&self) -> usize;

    /// Short human-readable name ("pdf", "ws", ...), used in experiment
    /// output.
    fn name(&self) -> &'static str;
}

/// Which scheduler to instantiate — convenience enum used by the experiment
/// harness and the examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Parallel Depth First.
    Pdf,
    /// Work Stealing with deterministic round-robin victim selection.
    WorkStealing,
    /// Work Stealing with seeded random victim selection.
    WorkStealingRandom(u64),
    /// Central FIFO queue (breadth-first-ish baseline, not in the paper).
    CentralQueue,
}

impl SchedulerKind {
    /// Instantiate the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Pdf => Box::new(crate::pdf::Pdf::new()),
            SchedulerKind::WorkStealing => Box::new(crate::ws::WorkStealing::new()),
            SchedulerKind::WorkStealingRandom(seed) => {
                Box::new(crate::ws::WorkStealing::with_random_victims(seed))
            }
            SchedulerKind::CentralQueue => Box::new(crate::central::CentralQueue::new()),
        }
    }

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Pdf => "pdf",
            SchedulerKind::WorkStealing => "ws",
            SchedulerKind::WorkStealingRandom(_) => "ws-rand",
            SchedulerKind::CentralQueue => "central",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_matching_names() {
        assert_eq!(SchedulerKind::Pdf.build().name(), "pdf");
        assert_eq!(SchedulerKind::WorkStealing.build().name(), "ws");
        assert_eq!(SchedulerKind::WorkStealingRandom(1).build().name(), "ws");
        assert_eq!(SchedulerKind::CentralQueue.build().name(), "central");
        assert_eq!(SchedulerKind::Pdf.to_string(), "pdf");
        assert_eq!(SchedulerKind::WorkStealingRandom(7).name(), "ws-rand");
    }
}
