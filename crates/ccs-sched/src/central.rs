//! Central FIFO queue scheduler.
//!
//! Not part of the paper's comparison, but a useful baseline: ready tasks go
//! into a single global FIFO queue, which approximates a breadth-first
//! traversal of the DAG.  Breadth-first order maximises the number of widely
//! separated tasks executing together, so it tends to show the *worst*
//! constructive-sharing behaviour — handy for sanity-checking that PDF and WS
//! both beat it.

use std::collections::VecDeque;

use ccs_dag::{Dag, TaskId};

use crate::scheduler::Scheduler;

/// The global-FIFO scheduler.
#[derive(Debug, Default)]
pub struct CentralQueue {
    queue: VecDeque<TaskId>,
}

impl CentralQueue {
    /// Create an empty central queue.
    pub fn new() -> Self {
        CentralQueue::default()
    }
}

impl Scheduler for CentralQueue {
    fn init(&mut self, _dag: &Dag, _num_cores: usize) {
        self.queue.clear();
    }

    fn task_enabled(&mut self, task: TaskId, _enabling_core: Option<usize>) {
        self.queue.push_back(task);
    }

    fn next_task(&mut self, _core: usize) -> Option<TaskId> {
        self.queue.pop_front()
    }

    fn ready_count(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "central"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{ComputationBuilder, GroupMeta, TaskTrace};

    #[test]
    fn fifo_order() {
        let mut b = ComputationBuilder::new(128);
        let leaves: Vec<_> = (0..3)
            .map(|_| b.strand(TaskTrace::compute_only(1)))
            .collect();
        let root = b.par(leaves, GroupMeta::default());
        let comp = b.finish(root);
        let dag = Dag::from_computation(&comp);

        let mut s = CentralQueue::new();
        s.init(&dag, 2);
        s.task_enabled(TaskId(2), None);
        s.task_enabled(TaskId(0), None);
        s.task_enabled(TaskId(1), None);
        assert_eq!(s.ready_count(), 3);
        assert_eq!(s.next_task(0), Some(TaskId(2)));
        assert_eq!(s.next_task(1), Some(TaskId(0)));
        assert_eq!(s.next_task(0), Some(TaskId(1)));
        assert_eq!(s.next_task(0), None);
    }
}
