//! Shared spec-string parsing: `"name:key=value,key=value"`.
//!
//! Both axes of an experiment are selected by parseable spec strings — the
//! scheduler axis ([`SchedulerSpec`](crate::SchedulerSpec), e.g.
//! `"ws-rand:seed=7"`) and the workload axis (`ccs-experiment`'s
//! `WorkloadSpec`, e.g. `"heat:rows=1024,cols=1024,steps=8"`).  This module
//! is the single authority for the grammar so both sides parse, format and
//! error identically:
//!
//! ```text
//! spec   := name [ ":" param ( "," param )* ]
//! param  := key "=" value
//! name   := [A-Za-z0-9_.\-/]+        (also: key, value)
//! ```
//!
//! [`parse_spec`]/[`format_spec`] round-trip losslessly, [`split_spec_list`]
//! splits comma-separated spec lists (a segment containing `=` belongs to the
//! preceding spec's parameters, so `--workloads heat:rows=64,cols=64,lu`
//! parses as two specs), and [`did_you_mean`] powers the "unknown name"
//! suggestions of both registries.

/// The outcome of [`parse_spec`]: a registry name plus `key=value` pairs in
/// input order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedSpec {
    /// The registry name (before the first `:`).
    pub name: String,
    /// The `key=value` parameters, in the order written.
    pub params: Vec<(String, String)>,
}

/// Error produced when a spec string does not match the grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecParseError {
    /// The offending input.
    pub input: String,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid spec {:?}: {}", self.input, self.message)
    }
}

impl std::error::Error for SpecParseError {}

fn error(input: &str, message: impl Into<String>) -> SpecParseError {
    SpecParseError {
        input: input.to_string(),
        message: message.into(),
    }
}

/// A typed spec-resolution error: either the string failed the grammar, or
/// it parsed but named something no registry knows.
///
/// This is the error type the *validating* entry points return
/// ([`crate::SchedulerSpec::resolve`], `ccs-experiment`'s
/// `WorkloadSpec::resolve`) so that untrusted inputs — a client request
/// arriving at the `ccs-serve` daemon, for instance — surface as error
/// values the caller can turn into a protocol frame, never as panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The input did not match the spec grammar.
    Parse(SpecParseError),
    /// The input parsed, but its name has no registered factory.
    Unknown {
        /// Which axis rejected the name (`"scheduler"` or `"workload"`).
        axis: &'static str,
        /// The unresolvable name.
        name: String,
        /// The names that *are* registered, sorted.
        known: Vec<String>,
    },
}

impl SpecError {
    /// An [`SpecError::Unknown`] for `name` on the given axis.
    pub fn unknown(axis: &'static str, name: impl Into<String>, known: Vec<String>) -> SpecError {
        SpecError::Unknown {
            axis,
            name: name.into(),
            known,
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => e.fmt(f),
            SpecError::Unknown { axis, name, known } => {
                write!(f, "unknown {axis} {name:?}")?;
                if let Some(close) = did_you_mean(name, known.iter().map(String::as_str)) {
                    write!(f, " — did you mean {close:?}?")?;
                }
                write!(f, " (registered: {})", known.join(", "))
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<SpecParseError> for SpecError {
    fn from(e: SpecParseError) -> SpecError {
        SpecError::Parse(e)
    }
}

/// Whether `word` is a legal spec name, key or value: non-empty ASCII
/// alphanumerics plus `_`, `.`, `-` and `/`.
pub fn is_valid_word(word: &str) -> bool {
    !word.is_empty()
        && word
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '/'))
}

/// Parse `"name"` or `"name:key=value,key=value"` into a [`ParsedSpec`].
///
/// Duplicate keys are rejected (a silent last-wins rule would make the
/// format/parse round-trip lossy).
pub fn parse_spec(input: &str) -> Result<ParsedSpec, SpecParseError> {
    let input = input.trim();
    let (name, rest) = match input.split_once(':') {
        Some((name, rest)) => (name, Some(rest)),
        None => (input, None),
    };
    if !is_valid_word(name) {
        return Err(error(
            input,
            "name must be non-empty and use only [A-Za-z0-9_.-/]",
        ));
    }
    let mut params = Vec::new();
    if let Some(rest) = rest {
        if rest.is_empty() {
            return Err(error(input, "expected key=value after ':'"));
        }
        for part in rest.split(',') {
            let Some((key, value)) = part.split_once('=') else {
                return Err(error(input, format!("parameter {part:?} is not key=value")));
            };
            if !is_valid_word(key) || !is_valid_word(value) {
                return Err(error(
                    input,
                    format!("parameter {part:?} has an empty or non-[A-Za-z0-9_.-/] key/value"),
                ));
            }
            if params.iter().any(|(k, _): &(String, String)| k == key) {
                return Err(error(input, format!("duplicate parameter key {key:?}")));
            }
            params.push((key.to_string(), value.to_string()));
        }
    }
    Ok(ParsedSpec {
        name: name.to_string(),
        params,
    })
}

/// Format a name and parameters back into the spec grammar — the inverse of
/// [`parse_spec`] (`format_spec` of a parsed spec re-parses to the same
/// value).
pub fn format_spec<'a>(name: &str, params: impl IntoIterator<Item = (&'a str, &'a str)>) -> String {
    let mut out = name.to_string();
    for (i, (key, value)) in params.into_iter().enumerate() {
        out.push(if i == 0 { ':' } else { ',' });
        out.push_str(key);
        out.push('=');
        out.push_str(value);
    }
    out
}

/// Split a comma-separated list of specs, keeping parameter commas attached
/// to their spec: a segment containing `=` (but no `:`, which always starts
/// a new spec) continues the previous spec.
///
/// `"heat:rows=64,cols=64,lu"` → `["heat:rows=64,cols=64", "lu"]`.
pub fn split_spec_list(input: &str) -> Vec<String> {
    let mut specs: Vec<String> = Vec::new();
    for segment in input.split(',') {
        let segment = segment.trim();
        if segment.contains('=')
            && !segment.contains(':')
            && specs.last().is_some_and(|s| s.contains(':'))
        {
            let last = specs.last_mut().unwrap();
            last.push(',');
            last.push_str(segment);
        } else if !segment.is_empty() {
            specs.push(segment.to_string());
        }
    }
    specs
}

/// The closest candidate within a small edit distance of `input`, for
/// "unknown name — did you mean …?" errors.  Returns `None` when nothing is
/// plausibly close (distance > 2).
pub fn did_you_mean<'a>(
    input: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Option<String> {
    candidates
        .into_iter()
        .map(|c| (edit_distance(input, c), c))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c.to_string())
}

/// Levenshtein distance over bytes (all registry names are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_names_parse() {
        let spec = parse_spec("mergesort").unwrap();
        assert_eq!(spec.name, "mergesort");
        assert!(spec.params.is_empty());
    }

    #[test]
    fn params_parse_in_order() {
        let spec = parse_spec("heat:rows=1024,cols=512,steps=8").unwrap();
        assert_eq!(spec.name, "heat");
        assert_eq!(
            spec.params,
            vec![
                ("rows".to_string(), "1024".to_string()),
                ("cols".to_string(), "512".to_string()),
                ("steps".to_string(), "8".to_string()),
            ]
        );
    }

    #[test]
    fn format_is_the_inverse_of_parse() {
        for input in ["lu", "matmul:n=512", "heat:rows=64,cols=64,steps=2"] {
            let spec = parse_spec(input).unwrap();
            let formatted = format_spec(
                &spec.name,
                spec.params.iter().map(|(k, v)| (k.as_str(), v.as_str())),
            );
            assert_eq!(formatted, input);
            assert_eq!(parse_spec(&formatted).unwrap(), spec);
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            ":",
            "name:",
            "name:k",
            "name:k=",
            "name:=v",
            "na me",
            "name:k=v,k=w",
            "name:k=v,",
        ] {
            assert!(parse_spec(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn spec_lists_keep_param_commas_attached() {
        assert_eq!(
            split_spec_list("heat:rows=64,cols=64,lu,matmul:n=128"),
            vec!["heat:rows=64,cols=64", "lu", "matmul:n=128"]
        );
        assert_eq!(
            split_spec_list("heat:rows=64,cols=64,matmul:n=128"),
            vec!["heat:rows=64,cols=64", "matmul:n=128"]
        );
        assert_eq!(split_spec_list("lu, mergesort"), vec!["lu", "mergesort"]);
        assert_eq!(split_spec_list(""), Vec::<String>::new());
    }

    #[test]
    fn did_you_mean_finds_near_misses_only() {
        let names = ["mergesort", "matmul", "heat"];
        assert_eq!(
            did_you_mean("mergsort", names),
            Some("mergesort".to_string())
        );
        assert_eq!(did_you_mean("matmull", names), Some("matmul".to_string()));
        assert_eq!(did_you_mean("quicksort", names), None);
    }
}
