//! Thread schedulers for constructive cache sharing — the primary
//! contribution of Chen et al., *"Scheduling Threads for Constructive Cache
//! Sharing on CMPs"*, SPAA 2007.
//!
//! Two state-of-the-art greedy schedulers for fine-grained multithreaded
//! programs are provided, plus a baseline:
//!
//! * [`Pdf`] — **Parallel Depth First**: an idle core receives the ready task
//!   the *sequential* program would have executed earliest, so concurrently
//!   scheduled tasks track the sequential execution and share a largely
//!   overlapping working set (constructive cache sharing);
//! * [`WorkStealing`] — per-core deques; forks push onto the top of the local
//!   deque, idle cores pop locally and steal from the bottom of other cores'
//!   deques, so cores tend to work on disjoint sub-DAGs with disjoint working
//!   sets;
//! * [`CentralQueue`] — a global FIFO baseline.
//!
//! All schedulers implement the [`Scheduler`] trait and can be driven either
//! by the pure [`exec`] executor (no memory system) or by the cycle-level CMP
//! simulator in `ccs-sim`.  Module [`theory`] contains the analytical results
//! of Section 3 (Theorem 3.1, the Mergesort miss model) and the machinery the
//! property tests use to validate them.
//!
//! # Example
//!
//! ```
//! use ccs_dag::{ComputationBuilder, Dag, GroupMeta};
//! use ccs_sched::{execute, SchedulerKind};
//!
//! // par(8 strands) followed by a join strand.
//! let mut b = ComputationBuilder::new(128);
//! let leaves: Vec<_> = (0..8).map(|i| {
//!     b.strand_with(|t| { t.compute(1000).read_range(i * 8192, 8192, 2); })
//! }).collect();
//! let par = b.par(leaves, GroupMeta::labeled("leaves"));
//! let join = b.strand_with(|t| { t.compute(100); });
//! let root = b.seq(vec![par, join], GroupMeta::labeled("root"));
//! let comp = b.finish(root);
//! let dag = Dag::from_computation(&comp);
//!
//! let pdf = execute(&dag, 4, SchedulerKind::Pdf);
//! let ws = execute(&dag, 4, SchedulerKind::WorkStealing);
//! assert_eq!(pdf.makespan, ws.makespan); // same work, both greedy
//! pdf.validate(&dag).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod central;
pub mod exec;
pub mod pdf;
pub mod registry;
pub mod scheduler;
pub mod spec;
pub mod theory;
pub mod ws;

pub use central::CentralQueue;
pub use exec::{execute, execute_with, Schedule};
pub use pdf::Pdf;
pub use registry::{SchedulerFactory, SchedulerParams, SchedulerRegistry, SchedulerSpec};
pub use scheduler::{Scheduler, SchedulerKind};
pub use spec::{SpecError, SpecParseError};
pub use ws::WorkStealing;
