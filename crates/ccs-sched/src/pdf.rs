//! Parallel Depth First (PDF) scheduling (Section 3, [5, 6]).
//!
//! PDF is a greedy scheduler designed for constructive cache sharing: when a
//! core completes a task, it is assigned the ready task that the *sequential*
//! program would have executed the earliest.  Because important sequential
//! programs are tuned for good (single-core) cache behaviour, co-scheduling
//! tasks in an order that tracks the sequential execution gives the parallel
//! execution a largely overlapping working set across cores, and hence good
//! shared-cache behaviour (Theorem 3.1).
//!
//! Since the trace-driven experiments materialise the whole computation DAG
//! before execution, the sequential priority of every task is known exactly:
//! it is the task's rank in the 1DF order ([`Dag::seq_order`]).  (The online
//! variants of [6, 7, 28] maintain these priorities without executing the
//! sequential program; the native runtime in `ccs-runtime` uses such an
//! online hierarchical labelling.)

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ccs_dag::{Dag, TaskId};

use crate::scheduler::Scheduler;

/// The Parallel Depth First scheduler.
#[derive(Debug, Default)]
pub struct Pdf {
    /// `seq_rank[task]` = position of the task in the sequential execution.
    seq_rank: Vec<u32>,
    /// Ready tasks, ordered by sequential rank (min-heap).
    ready: BinaryHeap<Reverse<(u32, u32)>>,
}

impl Pdf {
    /// Create a PDF scheduler.
    pub fn new() -> Self {
        Pdf::default()
    }
}

impl Scheduler for Pdf {
    fn init(&mut self, dag: &Dag, _num_cores: usize) {
        self.seq_rank = (0..dag.num_tasks() as u32)
            .map(|t| dag.seq_rank(TaskId(t)))
            .collect();
        self.ready.clear();
    }

    fn task_enabled(&mut self, task: TaskId, _enabling_core: Option<usize>) {
        let rank = self.seq_rank[task.index()];
        self.ready.push(Reverse((rank, task.0)));
    }

    fn next_task(&mut self, _core: usize) -> Option<TaskId> {
        self.ready.pop().map(|Reverse((_, t))| TaskId(t))
    }

    fn ready_count(&self) -> usize {
        self.ready.len()
    }

    fn name(&self) -> &'static str {
        "pdf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{ComputationBuilder, GroupMeta, TaskTrace};

    fn fan_out(width: u32) -> Dag {
        let mut b = ComputationBuilder::new(128);
        let leaves: Vec<_> = (0..width)
            .map(|_| b.strand(TaskTrace::compute_only(1)))
            .collect();
        let root = b.par(leaves, GroupMeta::default());
        let comp = b.finish(root);
        Dag::from_computation(&comp)
    }

    #[test]
    fn pdf_returns_tasks_in_sequential_order() {
        let dag = fan_out(8);
        let mut pdf = Pdf::new();
        pdf.init(&dag, 4);
        // Enable in scrambled order.
        for &t in &[3u32, 7, 1, 0, 5, 2, 6, 4] {
            pdf.task_enabled(TaskId(t), None);
        }
        let order: Vec<u32> = (0..8).map(|_| pdf.next_task(0).unwrap().0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(pdf.next_task(0).is_none());
    }

    #[test]
    fn pdf_ready_count_tracks_queue() {
        let dag = fan_out(3);
        let mut pdf = Pdf::new();
        pdf.init(&dag, 2);
        assert_eq!(pdf.ready_count(), 0);
        pdf.task_enabled(TaskId(2), Some(0));
        pdf.task_enabled(TaskId(0), Some(1));
        assert_eq!(pdf.ready_count(), 2);
        assert_eq!(pdf.next_task(1), Some(TaskId(0)));
        assert_eq!(pdf.ready_count(), 1);
    }

    #[test]
    fn pdf_priority_follows_seq_rank_not_task_id() {
        // Build a DAG where creation order differs from sequential order:
        // the join strand (task 2) is created before the second child (task 3)
        // in some constructions; here we force it by nesting.
        let mut b = ComputationBuilder::new(128);
        let a = b.strand(TaskTrace::compute_only(1)); // T0
        let join = b.strand(TaskTrace::compute_only(1)); // T1 (created early)
        let c = b.strand(TaskTrace::compute_only(1)); // T2
        let p = b.par(vec![a, c], GroupMeta::default());
        let root = b.seq(vec![p, join], GroupMeta::default());
        let comp = b.finish(root);
        let dag = Dag::from_computation(&comp);
        // Sequential order is T0, T2, T1.
        let mut pdf = Pdf::new();
        pdf.init(&dag, 2);
        pdf.task_enabled(TaskId(1), None);
        pdf.task_enabled(TaskId(2), None);
        assert_eq!(
            pdf.next_task(0),
            Some(TaskId(2)),
            "T2 precedes T1 sequentially"
        );
    }
}
