//! Property-based tests for the schedulers and the greedy executor.

use ccs_dag::synth::{random_computation, SynthParams};
use ccs_dag::Dag;
use ccs_sched::theory::{pdf_ideal_misses, sequential_misses, theorem31_capacity};
use ccs_sched::{execute, SchedulerKind};
use proptest::prelude::*;

fn small_params() -> SynthParams {
    SynthParams {
        max_depth: 4,
        max_par_width: 4,
        max_seq_len: 3,
        max_strand_work: 60,
        max_strand_refs: 12,
        num_regions: 3,
        region_bytes: 8 * 1024,
        shared_ref_prob: 0.5,
        line_size: 128,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every scheduler produces a legal schedule on random DAGs, obeys the
    /// greedy (Brent) bound, and never beats the trivial lower bounds.
    #[test]
    fn schedules_are_legal_and_within_brent_bound(
        seed in 0u64..10_000,
        cores in 1usize..9,
    ) {
        let comp = random_computation(seed, &small_params());
        let dag = Dag::from_computation(&comp);
        let w = dag.total_work();
        let d = dag.depth();
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing, SchedulerKind::CentralQueue] {
            let s = execute(&dag, cores, kind);
            prop_assert!(s.validate(&dag).is_ok());
            prop_assert!(s.makespan >= d);
            prop_assert!(s.makespan >= w / cores as u64);
            prop_assert!(s.makespan <= w / cores as u64 + d + 1);
        }
    }

    /// PDF and WS are both greedy, so their makespans on the same DAG can
    /// differ by at most the Brent slack; and all schedulers agree exactly on
    /// one core.
    #[test]
    fn one_core_makespan_equals_total_work(seed in 0u64..10_000) {
        let comp = random_computation(seed, &small_params());
        let dag = Dag::from_computation(&comp);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing, SchedulerKind::CentralQueue] {
            let s = execute(&dag, 1, kind);
            prop_assert_eq!(s.makespan, dag.total_work());
        }
    }

    /// Theorem 3.1: PDF on P cores with a shared ideal cache of capacity
    /// C + P·D incurs at most as many misses as the sequential execution with
    /// capacity C.
    #[test]
    fn theorem_31_miss_bound(seed in 0u64..5_000, cores in 2usize..6, c_lines in 4u64..64) {
        let comp = random_computation(seed, &small_params());
        let m1 = sequential_misses(&comp, c_lines);
        let cp = theorem31_capacity(&comp, c_lines, cores);
        let mp = pdf_ideal_misses(&comp, cores, cp);
        prop_assert!(
            mp <= m1,
            "PDF misses {} exceed sequential misses {} (P={}, C={})",
            mp, m1, cores, c_lines
        );
    }

    /// More shared cache never hurts the instruction-level PDF execution
    /// (LRU inclusion carries over to the parallel interleaving because the
    /// schedule itself does not depend on hits/misses).
    #[test]
    fn pdf_misses_monotone_in_cache_size(seed in 0u64..5_000, cores in 1usize..5) {
        let comp = random_computation(seed, &small_params());
        let small = pdf_ideal_misses(&comp, cores, 16);
        let large = pdf_ideal_misses(&comp, cores, 256);
        prop_assert!(large <= small);
    }
}
