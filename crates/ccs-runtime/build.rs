//! Selects the parking backend for `sleep::Futex`: the raw `futex(2)`
//! syscall where we know how to issue it without libc (Linux on x86_64 or
//! aarch64), the mutex + condvar fallback everywhere else.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(ccs_raw_syscalls)");
    let os = std::env::var("CARGO_CFG_TARGET_OS").unwrap_or_default();
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    if os == "linux" && (arch == "x86_64" || arch == "aarch64") {
        println!("cargo::rustc-cfg=ccs_raw_syscalls");
    }
}
