//! Stress tests for the native runtime's sleep/wake and stealing paths.
//!
//! These run in CI with `--test-threads` oversubscribed well past the
//! runner's core count, so every park/unpark and steal race below is
//! exercised under forced preemption.  Each test is deliberately noisy
//! (many pools, many external threads) rather than deep: the goal is to
//! shake out lost wakeups and queue corruption, not to benchmark.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ccs_runtime::{join, CancelToken, Policy, ThreadPool};

/// Spin until `cond` holds or the deadline passes; panic with `what` on
/// timeout so a lost wakeup fails loudly instead of hanging CI.
fn wait_until(what: &str, deadline: Duration, cond: impl Fn() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        thread::yield_now();
    }
}

/// Hammer the park/unpark path: external threads push bursts of jobs with
/// gaps long enough for workers to walk the full spin → yield → park
/// ladder, so wakes constantly race announce-sleepiness.  Every job must
/// run exactly once.
#[test]
fn park_unpark_hammering_from_external_threads() {
    for policy in [Policy::WorkStealing, Policy::Pdf] {
        let pool = Arc::new(ThreadPool::new(3, policy));
        let counter = Arc::new(AtomicU64::new(0));
        const PUSHERS: u64 = 4;
        const BURSTS: u64 = 40;
        const BURST_LEN: u64 = 8;

        let pushers: Vec<_> = (0..PUSHERS)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for burst in 0..BURSTS {
                        for _ in 0..BURST_LEN {
                            let c = Arc::clone(&counter);
                            pool.spawn_detached(move || {
                                c.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        // Let the workers drain and fall asleep between
                        // bursts (every ~4th burst sleeps long enough for
                        // the whole backoff ladder to bottom out).
                        if burst % 4 == 0 {
                            thread::sleep(Duration::from_millis(2));
                        } else {
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in pushers {
            p.join().unwrap();
        }

        let total = PUSHERS * BURSTS * BURST_LEN;
        wait_until("all hammered jobs to run", Duration::from_secs(60), || {
            counter.load(Ordering::Relaxed) == total
        });
        assert_eq!(counter.load(Ordering::Relaxed), total);
    }
}

/// The no-sleeper publish path must never touch the slow wake machinery:
/// while every worker is verifiably busy, `slow_wakes()` must not move.
/// (The fast path is a single atomic load; the counter is bumped by the
/// slow path only.)
#[test]
fn busy_publish_never_takes_slow_wake_path() {
    for policy in [Policy::WorkStealing, Policy::Pdf] {
        let pool = ThreadPool::new(2, policy);
        let gate = Arc::new(AtomicBool::new(false));
        let running = Arc::new(AtomicU64::new(0));
        // Occupy both workers with gated jobs.
        for _ in 0..2 {
            let (gate, running) = (Arc::clone(&gate), Arc::clone(&running));
            pool.spawn_detached(move || {
                running.fetch_add(1, Ordering::SeqCst);
                while !gate.load(Ordering::Acquire) {
                    thread::yield_now();
                }
            });
        }
        wait_until("both workers busy", Duration::from_secs(30), || {
            running.load(Ordering::SeqCst) == 2
        });

        let before = pool.slow_wakes();
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..512 {
            let d = Arc::clone(&done);
            pool.spawn_detached(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(
            pool.slow_wakes(),
            before,
            "pushing to a fully-busy {policy:?} pool must stay on the lock-free fast path"
        );

        gate.store(true, Ordering::Release);
        wait_until("backlog to drain", Duration::from_secs(30), || {
            done.load(Ordering::Relaxed) == 512
        });
    }
}

/// Recursive join under contention: several `install`s from external
/// threads all running a deep fork-join reduction on the same small pool,
/// so help-while-waiting constantly executes *other* tasks' stolen jobs.
#[test]
fn recursive_join_under_contention() {
    fn sum(range: std::ops::Range<u64>) -> u64 {
        let len = range.end - range.start;
        if len <= 32 {
            return range.sum();
        }
        let mid = range.start + len / 2;
        let (a, b) = join(|| sum(range.start..mid), || sum(mid..range.end));
        a + b
    }

    for policy in [Policy::WorkStealing, Policy::Pdf] {
        let pool = Arc::new(ThreadPool::new(2, policy));
        let expect: u64 = (0..40_000).sum();
        let callers: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    for _ in 0..3 {
                        assert_eq!(pool.install(|| sum(0..40_000)), expect);
                    }
                })
            })
            .collect();
        for c in callers {
            c.join().unwrap();
        }
    }
}

/// Cancellation racing the stealing path: queue cancellable jobs while the
/// pool is saturated with fork-join work (so they get batch-stolen around),
/// then trip the token mid-flight.  Every job must either run exactly once
/// or be dropped unrun — never both, never twice.
#[test]
fn spawn_cancellable_races_stealing() {
    let pool = Arc::new(ThreadPool::new(3, Policy::WorkStealing));
    for round in 0..8 {
        let token = CancelToken::new();
        let ran = Arc::new(AtomicU64::new(0));

        // Saturate the workers so cancellable jobs sit in deques and get
        // shuffled by batch steals before they run.
        fn busy(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 16 {
                return range.map(|x| x ^ (x << 3)).sum();
            }
            let mid = range.start + len / 2;
            let (a, b) = join(|| busy(range.start..mid), || busy(mid..range.end));
            a.wrapping_add(b)
        }
        let saturator = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.install(|| busy(0..20_000)))
        };

        const JOBS: u64 = 200;
        for _ in 0..JOBS {
            let r = Arc::clone(&ran);
            pool.spawn_cancellable(&token, move || {
                r.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Cancel at a different phase each round: sometimes while the
        // saturator still floods the deques, sometimes after.
        if round % 2 == 0 {
            thread::yield_now();
        } else {
            thread::sleep(Duration::from_millis(round));
        }
        token.cancel();
        saturator.join().unwrap();

        // Queue must fully drain; whatever ran, ran exactly once.
        let settle = Instant::now() + Duration::from_secs(30);
        let mut last = ran.load(Ordering::Relaxed);
        loop {
            thread::sleep(Duration::from_millis(5));
            let now = ran.load(Ordering::Relaxed);
            if now == last {
                break;
            }
            last = now;
            assert!(Instant::now() < settle, "cancellable jobs never settled");
        }
        assert!(
            ran.load(Ordering::Relaxed) <= JOBS,
            "a job ran more than once"
        );
    }
}

/// A panicking detached job executed via the *steal* path (queued from
/// outside, stolen by a worker) must be isolated and counted, and the
/// worker that caught it must keep serving structured work.
#[test]
fn stolen_job_panic_is_isolated() {
    for policy in [Policy::WorkStealing, Policy::Pdf] {
        let pool = Arc::new(ThreadPool::new(2, policy));
        let before = pool.panics_caught();
        const BOOMS: usize = 16;
        for i in 0..BOOMS {
            pool.spawn_detached(move || panic!("stolen boom {i}"));
        }
        wait_until("panics to be caught", Duration::from_secs(30), || {
            pool.panics_caught() == before + BOOMS
        });

        // Workers all survived: a fork-join reduction still computes.
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(pool.install(|| fib(15)), 610);
        assert_eq!(pool.panics_caught(), before + BOOMS);
    }
}

/// Many short-lived pools starting and dropping concurrently: shutdown
/// (`notify_all` + join) must reliably rouse parked workers even while
/// other pools churn the scheduler.
#[test]
fn pool_churn_shutdown_wakes_everyone() {
    let churners: Vec<_> = (0..4)
        .map(|t| {
            thread::spawn(move || {
                for i in 0..12 {
                    let policy = if (t + i) % 2 == 0 {
                        Policy::WorkStealing
                    } else {
                        Policy::Pdf
                    };
                    let pool = ThreadPool::new(2, policy);
                    let (a, b) = pool.install(|| join(|| 40, || 2));
                    assert_eq!(a + b, 42);
                    // Let workers park before the drop so shutdown exercises
                    // the wake-from-futex path, not just the busy path.
                    thread::sleep(Duration::from_millis(1));
                    drop(pool);
                }
            })
        })
        .collect();
    for c in churners {
        c.join().unwrap();
    }
}
