//! The native fork-join thread pool.
//!
//! A [`ThreadPool`] owns a set of worker threads and a scheduling *policy*:
//!
//! * [`Policy::WorkStealing`] — per-worker `crossbeam_deque` deques plus a
//!   global injector; workers pop their own deque LIFO and steal FIFO from
//!   others, exactly the WS discipline of Section 3;
//! * [`Policy::Pdf`] — a single priority pool ordered by the online
//!   sequential-priority labels of [`crate::label`]; an idle worker always
//!   takes the ready task the sequential program would have executed
//!   earliest, the PDF discipline of Section 3.
//!
//! The pool exposes rayon-style structured parallelism: [`ThreadPool::install`]
//! to enter the pool (from outside it), [`join`] for binary fork-join (usable
//! recursively from inside), and [`spawn`] for detached `'static` jobs.
//! `join` lets closures borrow from the caller's stack; this is sound because
//! `join` does not return until both closures have finished (see the safety
//! comments).
//!
//! # Runtime internals (DESIGN.md §14)
//!
//! This is the production work-stealing runtime, rebuilt from the seed
//! design around three ideas:
//!
//! * **lock-free wake fast path** — publishing a job consults the packed
//!   sleep-state word of [`crate::sleep`] with a single atomic load; the
//!   futex (or condvar) is touched only when a worker is actually sleepy or
//!   asleep.  The seed pool took a global mutex on *every* push.
//! * **batch stealing** — an out-of-work worker steals *batches* from the
//!   injector and from victim deques (`steal_batch_and_pop`), amortising
//!   the synchronisation cost of a steal over several jobs, and scans
//!   victims in seeded-random order instead of a fixed ring, so thieves
//!   don't convoy on the same victim.
//! * **spin → yield → park backoff** — an idle worker spins briefly
//!   (winning the common race where fork-join work reappears within
//!   nanoseconds), yields a few times, and only then parks on the futex
//!   through the announce-sleepiness → recheck → park protocol that cannot
//!   lose wakeups (see [`crate::sleep`]).
//!
//! Optional **CPU pinning** ([`ThreadPool::pinned`]) binds worker `i` to
//! core `i mod N` via raw `sched_setaffinity` on Linux (a no-op elsewhere),
//! which removes migration jitter for latency-sensitive serving.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

use crate::label::PdfLabel;
use crate::sleep::SleepState;

/// Scheduling policy of a [`ThreadPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Per-worker deques with stealing (Cilk/rayon style).
    WorkStealing,
    /// Global priority pool ordered by sequential (1DF) priority.
    Pdf,
}

type JobFn = Box<dyn FnOnce() + Send + 'static>;

/// A unit of work: the closure plus its sequential-priority label.
struct Job {
    label: PdfLabel,
    func: JobFn,
}

/// Rounds of the idle backoff ladder spent busy-spinning (with an
/// exponentially growing `spin_loop` burst) before moving to yields.
const SPIN_ROUNDS: u32 = 16;
/// Rounds spent calling `yield_now` after the spin phase and before the
/// worker announces sleepiness and parks.
const YIELD_ROUNDS: u32 = 8;

struct Registry {
    policy: Policy,
    /// Jobs submitted from outside the pool, or overflow from workers (WS).
    injector: Injector<Job>,
    /// Steal handles onto every worker's local deque (WS).
    stealers: Vec<Stealer<Job>>,
    /// Global priority pool (PDF): ordered by (label, submission sequence).
    pdf: Mutex<std::collections::BTreeMap<(PdfLabel, u64), JobFn>>,
    /// Number of queued (not yet started) jobs.  SeqCst: this counter is
    /// the "work is visible" side of the wake protocol (see `crate::sleep`).
    pending: AtomicUsize,
    /// Monotonic tie-breaker for PDF jobs with equal labels.
    seq: AtomicUsize,
    shutdown: AtomicBool,
    /// Detached-job panics caught at the pool boundary (see [`run_job_caught`]).
    panics_caught: AtomicUsize,
    /// Sleep/wake machinery for idle workers: packed idle/sleepy/asleep
    /// counters plus the futex event word.
    sleep: SleepState,
    /// Whether workers should bind themselves to CPUs (set by
    /// [`ThreadPool::pinned`]; applied lazily by each worker).
    pin: AtomicBool,
}

impl Registry {
    /// Queue a job.  Worker threads of a WS pool push to their own deque;
    /// everything else goes through the global injector / priority pool.
    fn push_job(&self, label: PdfLabel, func: JobFn) {
        // `pending` is bumped *before* the job lands in a queue: a worker
        // that observes `pending > 0` but cannot find the job yet simply
        // retries, and the pre-park recheck can never see "no work" while
        // a job is in flight.
        self.pending.fetch_add(1, Ordering::SeqCst);
        match self.policy {
            Policy::WorkStealing => {
                let job = Job { label, func };
                // Worker threads push onto their own deque — but only onto
                // a deque owned by *this* pool; a worker of pool A pushing
                // into pool B must use B's injector or the job would be
                // queued (and run) on the wrong pool.
                let leftover = LOCAL.with(|local| match &*local.borrow() {
                    Some(slot) if std::ptr::eq(slot.owner, self) => {
                        slot.deque.push(job);
                        None
                    }
                    _ => Some(job),
                });
                if let Some(job) = leftover {
                    self.injector.push(job);
                }
            }
            Policy::Pdf => {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed) as u64;
                self.pdf.lock().insert((label, seq), func);
            }
        }
        // Lock-free on the common path: a single atomic load when no
        // worker is sleepy or asleep.
        self.sleep.notify_one();
    }

    /// Find a job for the worker with the given index: local LIFO pop,
    /// then a batch steal from the injector, then batch steals from the
    /// other workers in seeded-random order.
    fn pop_job(&self, index: usize) -> Option<(PdfLabel, JobFn)> {
        let found = match self.policy {
            Policy::WorkStealing => LOCAL
                .with(|local| {
                    let slot = local.borrow();
                    let slot = slot.as_ref().filter(|s| std::ptr::eq(s.owner, self));
                    match slot {
                        Some(slot) => slot
                            .deque
                            .pop()
                            .or_else(|| self.steal_into(&slot.deque, index)),
                        // Not one of our workers (defensive; pops are only
                        // issued from worker threads): take from the injector.
                        None => loop {
                            match self.injector.steal() {
                                Steal::Success(j) => break Some(j),
                                Steal::Empty => break None,
                                Steal::Retry => continue,
                            }
                        },
                    }
                })
                .map(|j| (j.label, j.func)),
            Policy::Pdf => self
                .pdf
                .lock()
                .pop_first()
                .map(|((label, _), func)| (label, func)),
        };
        if found.is_some() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
        }
        found
    }

    /// The WS steal path: batch-steal from the injector, then from victims
    /// in seeded-random order.  Surplus jobs land in `local`, and one is
    /// returned; if the batch left more behind, one sleeping peer is
    /// notified so surplus doesn't strand on a single busy worker.
    fn steal_into(&self, local: &Deque<Job>, index: usize) -> Option<Job> {
        let stolen = self.try_steal_batches(local, index);
        if stolen.is_some() && !local.is_empty() {
            self.sleep.notify_one();
        }
        stolen
    }

    fn try_steal_batches(&self, local: &Deque<Job>, index: usize) -> Option<Job> {
        loop {
            match self.injector.steal_batch_and_pop(local) {
                Steal::Success(job) => return Some(job),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let n = self.stealers.len();
        if n <= 1 {
            return None;
        }
        // Seeded-random victim order: thieves start their scan at
        // uncorrelated positions instead of convoying around a fixed ring.
        let start = (steal_rng_next() % n as u64) as usize;
        let mut retry = true;
        while std::mem::take(&mut retry) {
            for i in 0..n {
                let victim = (start + i) % n;
                if victim == index {
                    continue;
                }
                match self.stealers[victim].steal_batch_and_pop(local) {
                    Steal::Success(job) => return Some(job),
                    Steal::Empty => {}
                    Steal::Retry => retry = true,
                }
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.pending.load(Ordering::SeqCst) > 0
    }
}

/// A worker's thread-local queue slot: its deque plus the registry that
/// owns it, so pushes can tell "my pool" from "some other pool".
struct LocalSlot {
    owner: *const Registry,
    deque: Deque<Job>,
}

thread_local! {
    /// The local work-stealing deque of the current worker thread (WS pools).
    static LOCAL: RefCell<Option<LocalSlot>> = const { RefCell::new(None) };
    /// The execution context of the current worker thread.
    static CURRENT: RefCell<Option<WorkerContext>> = const { RefCell::new(None) };
    /// Per-thread xorshift state for the random victim order.
    static STEAL_RNG: Cell<u64> = const { Cell::new(0x9e37_79b9_7f4a_7c15) };
}

/// Advance the thread-local xorshift64 state and return the next draw.
fn steal_rng_next() -> u64 {
    STEAL_RNG.with(|rng| {
        let mut x = rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        rng.set(x);
        x
    })
}

/// Seed the victim-order rng deterministically from the worker index (a
/// splitmix64 scramble keeps neighbouring indices uncorrelated).
fn seed_steal_rng(index: usize) {
    let mut z = (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    STEAL_RNG.with(|rng| rng.set(z | 1));
}

struct WorkerContext {
    registry: Arc<Registry>,
    index: usize,
    /// Label of the job currently executing on this worker.
    label: PdfLabel,
    /// Number of children the current job has spawned so far.
    children: u32,
}

/// Register the fork of a child task on the current worker: bump the
/// current job's child counter and return the pool handle, the worker
/// index, and the child's priority label.  `None` outside a pool.
///
/// Child labels exist to order the PDF priority pool; under the WS policy
/// they are never consulted, so the (allocating) label derivation is
/// skipped and the root label stands in.
fn next_child() -> Option<(Arc<Registry>, usize, PdfLabel)> {
    CURRENT.with(|c| {
        c.borrow_mut().as_mut().map(|ctx| {
            let index = ctx.children;
            ctx.children += 1;
            let label = match ctx.registry.policy {
                Policy::Pdf => ctx.label.child(index),
                Policy::WorkStealing => PdfLabel::root(),
            };
            (Arc::clone(&ctx.registry), ctx.index, label)
        })
    })
}

/// A completion flag that lets non-worker threads block and worker threads
/// help-while-waiting.
struct Latch {
    done: AtomicBool,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            done: AtomicBool::new(false),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        })
    }

    fn set(&self) {
        self.done.store(true, Ordering::Release);
        let _guard = self.mutex.lock();
        self.cond.notify_all();
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Block the calling (non-worker) thread until the latch is set.
    fn wait(&self) {
        let mut guard = self.mutex.lock();
        while !self.probe() {
            self.cond.wait(&mut guard);
        }
    }
}

/// A fork-join thread pool with a pluggable scheduling policy.
pub struct ThreadPool {
    registry: Arc<Registry>,
    workers: Vec<thread::JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Create a pool with `num_threads` worker threads (at least one) and the
    /// given policy.
    pub fn new(num_threads: usize, policy: Policy) -> Self {
        let num_threads = num_threads.max(1);
        let deques: Vec<Deque<Job>> = (0..num_threads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(Deque::stealer).collect();
        let registry = Arc::new(Registry {
            policy,
            injector: Injector::new(),
            stealers,
            pdf: Mutex::new(std::collections::BTreeMap::new()),
            pending: AtomicUsize::new(0),
            seq: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panics_caught: AtomicUsize::new(0),
            sleep: SleepState::new(),
            pin: AtomicBool::new(false),
        });
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let registry = Arc::clone(&registry);
                thread::Builder::new()
                    .name(format!("ccs-worker-{index}"))
                    .spawn(move || worker_loop(registry, index, deque))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            registry,
            workers,
            num_threads,
        }
    }

    /// Request CPU pinning: each worker binds itself to core
    /// `index mod available_parallelism` via `sched_setaffinity` (Linux
    /// x86_64/aarch64; silently a no-op elsewhere).  Builder-style:
    ///
    /// ```
    /// use ccs_runtime::{Policy, ThreadPool};
    /// let pool = ThreadPool::new(2, Policy::WorkStealing).pinned(true);
    /// assert!(pool.is_pinned());
    /// ```
    ///
    /// Default off.  Pinning is applied lazily by each worker the next time
    /// it looks for work (parked workers are woken to apply it); passing
    /// `false` later clears the flag but does not unbind already-pinned
    /// workers.
    pub fn pinned(self, pin: bool) -> Self {
        self.registry.pin.store(pin, Ordering::SeqCst);
        if pin {
            // Wake everyone so sleeping workers apply the binding promptly.
            self.registry.sleep.notify_all();
        }
        self
    }

    /// Whether CPU pinning has been requested for this pool.
    pub fn is_pinned(&self) -> bool {
        self.registry.pin.load(Ordering::SeqCst)
    }

    /// The number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The scheduling policy.
    pub fn policy(&self) -> Policy {
        self.registry.policy
    }

    /// Number of detached-job panics caught at the pool boundary so far.
    ///
    /// `install`/`join` closures re-raise panics to their caller, so this
    /// counts only detached jobs ([`ThreadPool::spawn_detached`] and
    /// friends) whose panic would otherwise have killed a worker thread.
    pub fn panics_caught(&self) -> usize {
        self.registry.panics_caught.load(Ordering::Relaxed)
    }

    /// Number of job publications that had to take the slow wake path (an
    /// event bump plus a futex/condvar wake) because a worker was sleepy or
    /// asleep.  Publications while every worker is busy cost a single
    /// atomic load and do not move this counter — the pool stress suite
    /// asserts exactly that.
    pub fn slow_wakes(&self) -> u64 {
        self.registry.sleep.slow_wakes()
    }

    /// Run `f` on a worker thread of this pool and return its result.  Inside
    /// `f`, [`join`] and [`spawn`] use this pool.
    ///
    /// Must be called from *outside* the pool (e.g. the main thread); calling
    /// it from within one of the pool's own jobs can deadlock.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let latch = Latch::new();
        let result: Arc<Mutex<Option<thread::Result<R>>>> = Arc::new(Mutex::new(None));
        {
            let latch = Arc::clone(&latch);
            let result = Arc::clone(&result);
            // SAFETY (lifetime erasure): the job only borrows `f` and the two
            // Arcs, which live until this function returns; and the function
            // does not return until `latch.wait()` observes the latch set,
            // which happens strictly after the job has finished running.
            let func: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = panic::catch_unwind(AssertUnwindSafe(f));
                *result.lock() = Some(r);
                latch.set();
            });
            let func: JobFn = unsafe { std::mem::transmute(func) };
            self.registry.push_job(PdfLabel::root(), func);
        }
        latch.wait();
        let r = result
            .lock()
            .take()
            .expect("job completed without a result");
        match r {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Spawn a detached, `'static` job onto the pool with root priority.
    pub fn spawn_detached(&self, f: impl FnOnce() + Send + 'static) {
        self.registry.push_job(PdfLabel::root(), Box::new(f));
    }

    /// Spawn a detached job that is skipped if `token` is cancelled by the
    /// time a worker dequeues it.
    ///
    /// Cancellation is cooperative and coarse: a job that has already
    /// *started* runs to completion (there is no preemption), but a job
    /// still queued when the token trips is dropped unrun — including
    /// everything its closure captured, so e.g. a captured channel sender
    /// disconnects without sending.  This is exactly the "in-flight points
    /// finish, queued points are dropped" semantics the `ccs-serve` daemon
    /// exposes for request cancellation.
    pub fn spawn_cancellable(&self, token: &crate::CancelToken, f: impl FnOnce() + Send + 'static) {
        let token = token.clone();
        self.spawn_detached(move || {
            if !token.is_cancelled() {
                f();
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.shutdown.store(true, Ordering::SeqCst);
        self.registry.sleep.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(registry: Arc<Registry>, index: usize, deque: Deque<Job>) {
    LOCAL.with(|local| {
        *local.borrow_mut() = Some(LocalSlot {
            owner: Arc::as_ptr(&registry),
            deque,
        })
    });
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(WorkerContext {
            registry: Arc::clone(&registry),
            index,
            label: PdfLabel::root(),
            children: 0,
        });
    });
    seed_steal_rng(index);
    let mut pinned = false;

    'main: loop {
        maybe_pin(&registry, index, &mut pinned);
        if let Some((label, func)) = registry.pop_job(index) {
            run_job_caught(&registry, label, func);
            continue;
        }
        if registry.shutdown.load(Ordering::SeqCst) {
            break;
        }

        // Out of work: walk the spin → yield → park ladder.  Each rung
        // retries the full find-work path; parking goes through the
        // sleepy/recheck protocol so a concurrent push can never be lost.
        registry.sleep.start_idle();
        let mut round = 0u32;
        loop {
            maybe_pin(&registry, index, &mut pinned);
            if let Some((label, func)) = registry.pop_job(index) {
                registry.sleep.end_idle();
                run_job_caught(&registry, label, func);
                continue 'main;
            }
            if registry.shutdown.load(Ordering::SeqCst) {
                registry.sleep.end_idle();
                break 'main;
            }
            if round < SPIN_ROUNDS {
                for _ in 0..(1u32 << round.min(6)) {
                    std::hint::spin_loop();
                }
                round += 1;
            } else if round < SPIN_ROUNDS + YIELD_ROUNDS {
                thread::yield_now();
                round += 1;
            } else {
                let ticket = registry.sleep.announce_sleepy();
                if registry.has_work() || registry.shutdown.load(Ordering::SeqCst) {
                    // The recheck saw something: retract and retry awake.
                    registry.sleep.cancel_sleepy();
                } else {
                    registry.sleep.sleep(ticket);
                }
                // Woken (or recheck hit): skip the spin phase, re-probe
                // with a few yields before considering sleep again.
                round = SPIN_ROUNDS;
            }
        }
    }
}

/// Apply a pending CPU-pinning request to this worker (once).
fn maybe_pin(registry: &Registry, index: usize, pinned: &mut bool) {
    if !*pinned && registry.pin.load(Ordering::Acquire) {
        pin_current_thread(index);
        *pinned = true;
    }
}

/// Bind the calling thread to core `index mod N` where `N` is the number
/// of available CPUs.  Raw `sched_setaffinity(2)` on Linux x86_64/aarch64;
/// a no-op returning `false` elsewhere.  Failures are ignored — pinning is
/// a performance hint, never load-bearing.
fn pin_current_thread(index: usize) -> bool {
    #[cfg(ccs_raw_syscalls)]
    {
        let cpus = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let cpu = index % cpus;
        // 1024-CPU mask, the classic cpu_set_t size.
        let mut mask = [0u64; 16];
        mask[cpu / 64] |= 1 << (cpu % 64);
        // SAFETY: the mask buffer outlives the syscall; pid 0 = this thread.
        let ret =
            unsafe { raw_sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr().cast()) };
        ret == 0
    }
    #[cfg(not(ccs_raw_syscalls))]
    {
        let _ = index;
        false
    }
}

/// Raw `sched_setaffinity(2)`: the workspace vendors its dependencies, so
/// the syscall is issued directly rather than through libc.
///
/// # Safety
/// `mask` must point to `len` valid bytes.
#[cfg(ccs_raw_syscalls)]
unsafe fn raw_sched_setaffinity(pid: i32, len: usize, mask: *const u8) -> i64 {
    #[cfg(target_arch = "x86_64")]
    const SYS: u64 = 203;
    #[cfg(target_arch = "aarch64")]
    const SYS: u64 = 122;
    let ret: i64;
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS as i64 => ret,
            in("rdi") pid as u64,
            in("rsi") len,
            in("rdx") mask,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    #[cfg(target_arch = "aarch64")]
    {
        let ret64: u64;
        std::arch::asm!(
            "svc 0",
            in("x8") SYS,
            inlateout("x0") pid as u64 => ret64,
            in("x1") len as u64,
            in("x2") mask as u64,
            options(nostack)
        );
        ret = ret64 as i64;
    }
    ret
}

/// Execute a job with the pool-boundary panic guard, making its label the
/// current label for nested spawns (and restoring the caller's afterwards,
/// so a `join` help loop can run foreign jobs without corrupting its own
/// task's labelling).
///
/// A panicking *detached* job is caught and counted instead of killing the
/// worker (or unwinding into an innocent `join` caller helping while it
/// waits).  `install` and `join` closures catch internally and re-raise at
/// their call site, so their panic semantics are unchanged.
fn run_job_caught(registry: &Registry, label: PdfLabel, func: JobFn) {
    let saved = CURRENT.with(|c| {
        c.borrow_mut().as_mut().map(|ctx| {
            let saved = (std::mem::replace(&mut ctx.label, label), ctx.children);
            ctx.children = 0;
            saved
        })
    });
    let result = panic::catch_unwind(AssertUnwindSafe(func));
    if let Some((label, children)) = saved {
        CURRENT.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.label = label;
                ctx.children = children;
            }
        });
    }
    if result.is_err() {
        registry.panics_caught.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fork-join: run `a` and `b`, potentially in parallel, and return both
/// results.  Must be called from inside [`ThreadPool::install`] (or from a job
/// spawned there); outside a pool the two closures simply run sequentially on
/// the calling thread.
///
/// Under the PDF policy `b` is labelled as the next child of the current task,
/// so the pool-wide priority order of pending jobs always matches the order a
/// sequential execution would first reach them.  Under the WS policy `b` is
/// pushed onto the current worker's deque, where other workers can steal it
/// from the bottom.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let Some((registry, index, b_label)) = next_child() else {
        return (a(), b());
    };

    // Both the completion flag and the result slot live on *this* stack
    // frame — `join` is on the hot fork path, and heap-allocating a latch
    // per fork costs more than the fork itself.  The latch is probed (never
    // condvar-waited), so setting it is a single release store and the
    // frame provably outlives the child: see the SAFETY comment.
    let done = AtomicBool::new(false);
    let b_result: Mutex<Option<thread::Result<RB>>> = Mutex::new(None);

    {
        let done = &done;
        let b_result = &b_result;
        // SAFETY (lifetime erasure): `b` may borrow from the caller's stack,
        // and the job itself borrows `done` and `b_result` from this frame.
        // This is sound because `join` does not return until it observes
        // `done == true` (see the help-while-waiting loop below), and the
        // store of `done` is the child's final touch of any borrow — so the
        // frame, and everything `b` captured, outlives the child's use.
        let func: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let r = panic::catch_unwind(AssertUnwindSafe(b));
            *b_result.lock() = Some(r);
            done.store(true, Ordering::Release);
        });
        let func: JobFn = unsafe { std::mem::transmute(func) };
        registry.push_job(b_label, func);
    }

    // Run `a` inline.
    let a_result = panic::catch_unwind(AssertUnwindSafe(a));

    // Help execute other jobs until `b` is done (it may be running on another
    // worker, still queued, or popped right here by ourselves).  Helping must
    // never park on the pool's sleep state: the event that frees us is the
    // *latch*, not new work, so we spin/yield between probes instead.
    while !done.load(Ordering::Acquire) {
        if let Some((label, func)) = registry.pop_job(index) {
            run_job_caught(&registry, label, func);
        } else {
            std::hint::spin_loop();
            thread::yield_now();
        }
    }

    let b_result = b_result
        .lock()
        .take()
        .expect("join child finished without a result");
    match (a_result, b_result) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(p), _) | (_, Err(p)) => panic::resume_unwind(p),
    }
}

/// Spawn a detached `'static` job from inside the pool, labelled as the next
/// child of the current task.  Outside a pool the job runs inline.
pub fn spawn(f: impl FnOnce() + Send + 'static) {
    match next_child() {
        Some((registry, _, label)) => registry.push_job(label, Box::new(f)),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pools() -> Vec<ThreadPool> {
        vec![
            ThreadPool::new(2, Policy::WorkStealing),
            ThreadPool::new(2, Policy::Pdf),
            ThreadPool::new(1, Policy::WorkStealing),
            ThreadPool::new(1, Policy::Pdf),
        ]
    }

    #[test]
    fn install_returns_value() {
        for pool in pools() {
            let v = pool.install(|| 21 * 2);
            assert_eq!(v, 42);
        }
    }

    #[test]
    fn join_computes_both_sides() {
        for pool in pools() {
            let (a, b) = pool.install(|| join(|| 1 + 1, || 2 + 2));
            assert_eq!((a, b), (2, 4));
        }
    }

    #[test]
    fn join_borrows_from_stack() {
        for pool in pools() {
            let mut left = vec![0u64; 100];
            let mut right = vec![0u64; 100];
            pool.install(|| {
                join(
                    || left.iter_mut().for_each(|x| *x += 1),
                    || right.iter_mut().for_each(|x| *x += 2),
                );
            });
            assert!(left.iter().all(|&x| x == 1));
            assert!(right.iter().all(|&x| x == 2));
        }
    }

    #[test]
    fn recursive_join_fibonacci() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        for pool in pools() {
            assert_eq!(pool.install(|| fib(16)), 987);
        }
    }

    #[test]
    fn deep_recursion_sums_correctly() {
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 64 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (a, b) = join(|| sum(range.start..mid), || sum(mid..range.end));
            a + b
        }
        let expect: u64 = (0..100_000).sum();
        for pool in pools() {
            assert_eq!(pool.install(|| sum(0..100_000)), expect);
        }
    }

    #[test]
    fn spawn_detached_runs() {
        for pool in pools() {
            let counter = Arc::new(AtomicU64::new(0));
            for _ in 0..16 {
                let c = Arc::clone(&counter);
                pool.spawn_detached(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            for _ in 0..2000 {
                if counter.load(Ordering::SeqCst) == 16 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(counter.load(Ordering::SeqCst), 16);
        }
    }

    #[test]
    fn spawn_cancellable_runs_when_live_and_skips_when_cancelled() {
        use crate::CancelToken;
        use std::sync::mpsc;

        // Live token: jobs run normally.
        let pool = ThreadPool::new(1, Policy::WorkStealing);
        let token = CancelToken::new();
        let counter = Arc::new(AtomicU64::new(0));
        {
            let c = Arc::clone(&counter);
            pool.spawn_cancellable(&token, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..2000 {
            if counter.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);

        // Cancelled-while-queued: block the single worker, queue jobs, trip
        // the token, then release the worker.  The queued closures must be
        // dropped unrun — observed through both the untouched counter and
        // the captured senders disconnecting without sending.
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.spawn_detached(move || {
                while !gate.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        let (tx, rx) = mpsc::channel::<u64>();
        for i in 0..4 {
            let c = Arc::clone(&counter);
            let tx = tx.clone();
            pool.spawn_cancellable(&token, move || {
                c.fetch_add(1, Ordering::SeqCst);
                tx.send(i).unwrap();
            });
        }
        drop(tx);
        token.cancel();
        gate.store(true, Ordering::Release);
        // Receiver disconnects once every queued job has been dropped unrun.
        assert_eq!(rx.iter().count(), 0);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_outside_pool_is_sequential() {
        let (a, b) = join(|| 5, || 7);
        assert_eq!((a, b), (5, 7));
    }

    #[test]
    fn panics_propagate_from_either_side() {
        let pool = ThreadPool::new(2, Policy::WorkStealing);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                join(|| 1, || -> i32 { panic!("boom") });
            })
        }));
        assert!(r.is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.install(|| 3), 3);
    }

    #[test]
    fn detached_panic_is_isolated_and_counted() {
        for pool in pools() {
            assert_eq!(pool.panics_caught(), 0);
            pool.spawn_detached(|| panic!("detached boom"));
            for _ in 0..2000 {
                if pool.panics_caught() == 1 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(pool.panics_caught(), 1);
            // Every worker survived: the pool still runs new work, both
            // detached and structured.
            let counter = Arc::new(AtomicU64::new(0));
            for _ in 0..8 {
                let c = Arc::clone(&counter);
                pool.spawn_detached(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            for _ in 0..2000 {
                if counter.load(Ordering::SeqCst) == 8 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(counter.load(Ordering::SeqCst), 8);
            assert_eq!(pool.install(|| 7 * 6), 42);
        }
    }

    #[test]
    fn nested_spawn_from_inside_pool() {
        for pool in pools() {
            let counter = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&counter);
            pool.install(move || {
                for _ in 0..8 {
                    let c = Arc::clone(&c2);
                    spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            for _ in 0..2000 {
                if counter.load(Ordering::SeqCst) == 8 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        }
    }

    #[test]
    fn pool_metadata() {
        let pool = ThreadPool::new(3, Policy::Pdf);
        assert_eq!(pool.num_threads(), 3);
        assert_eq!(pool.policy(), Policy::Pdf);
        let zero = ThreadPool::new(0, Policy::WorkStealing);
        assert_eq!(zero.num_threads(), 1, "clamped to one thread");
    }

    #[test]
    fn pinned_builder_is_usable_and_reports() {
        let pool = ThreadPool::new(2, Policy::WorkStealing).pinned(true);
        assert!(pool.is_pinned());
        assert_eq!(pool.install(|| join(|| 2, || 3)), (2, 3));
        let unpinned = ThreadPool::new(1, Policy::Pdf);
        assert!(!unpinned.is_pinned());
    }

    #[test]
    fn cross_pool_spawn_lands_on_the_right_pool() {
        // A worker of pool A spawning into pool B must route through B's
        // injector (not A's local deque): both pools must stay consistent
        // and drain cleanly afterwards.
        let a = ThreadPool::new(1, Policy::WorkStealing);
        let b = Arc::new(ThreadPool::new(1, Policy::WorkStealing));
        let counter = Arc::new(AtomicU64::new(0));
        let (b2, c2) = (Arc::clone(&b), Arc::clone(&counter));
        a.install(move || {
            let c3 = Arc::clone(&c2);
            b2.spawn_detached(move || {
                c3.fetch_add(1, Ordering::SeqCst);
            });
        });
        for _ in 0..2000 {
            if counter.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        // Both pools still work and drop cleanly (a pending-counter
        // imbalance from misrouted jobs would spin their workers forever).
        assert_eq!(a.install(|| 1), 1);
        assert_eq!(b.install(|| 2), 2);
    }

    #[test]
    fn busy_pushes_stay_on_the_fast_path() {
        // While the single worker is busy (never sleepy), pushes must not
        // touch the slow wake path.
        let pool = ThreadPool::new(1, Policy::WorkStealing);
        let gate = Arc::new(AtomicBool::new(false));
        let running = Arc::new(AtomicBool::new(false));
        {
            let (gate, running) = (Arc::clone(&gate), Arc::clone(&running));
            pool.spawn_detached(move || {
                running.store(true, Ordering::SeqCst);
                while !gate.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            });
        }
        while !running.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let before = pool.slow_wakes();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..256 {
            let c = Arc::clone(&counter);
            pool.spawn_detached(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(
            pool.slow_wakes(),
            before,
            "no-sleeper pushes must be a single atomic load"
        );
        gate.store(true, Ordering::Release);
        for _ in 0..5000 {
            if counter.load(Ordering::SeqCst) == 256 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 256);
    }
}
