//! The native fork-join thread pool.
//!
//! A [`ThreadPool`] owns a set of worker threads and a scheduling *policy*:
//!
//! * [`Policy::WorkStealing`] — per-worker `crossbeam_deque` deques plus a
//!   global injector; workers pop their own deque LIFO and steal FIFO from
//!   others, exactly the WS discipline of Section 3;
//! * [`Policy::Pdf`] — a single priority pool ordered by the online
//!   sequential-priority labels of [`crate::label`]; an idle worker always
//!   takes the ready task the sequential program would have executed
//!   earliest, the PDF discipline of Section 3.
//!
//! The pool exposes rayon-style structured parallelism: [`ThreadPool::install`]
//! to enter the pool (from outside it), [`join`] for binary fork-join (usable
//! recursively from inside), and [`spawn`] for detached `'static` jobs.
//! `join` lets closures borrow from the caller's stack; this is sound because
//! `join` does not return until both closures have finished (see the safety
//! comments).

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

use crate::label::PdfLabel;

/// Scheduling policy of a [`ThreadPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Per-worker deques with stealing (Cilk/rayon style).
    WorkStealing,
    /// Global priority pool ordered by sequential (1DF) priority.
    Pdf,
}

type JobFn = Box<dyn FnOnce() + Send + 'static>;

/// A unit of work: the closure plus its sequential-priority label.
struct Job {
    label: PdfLabel,
    func: JobFn,
}

struct Registry {
    policy: Policy,
    /// Jobs submitted from outside the pool, or overflow from workers (WS).
    injector: Injector<Job>,
    /// Steal handles onto every worker's local deque (WS).
    stealers: Vec<Stealer<Job>>,
    /// Global priority pool (PDF): ordered by (label, submission sequence).
    pdf: Mutex<std::collections::BTreeMap<(PdfLabel, u64), JobFn>>,
    /// Number of queued (not yet started) jobs.
    pending: AtomicUsize,
    /// Monotonic tie-breaker for jobs with equal labels.
    seq: AtomicUsize,
    shutdown: AtomicBool,
    /// Detached-job panics caught at the pool boundary (see [`run_job_caught`]).
    panics_caught: AtomicUsize,
    /// Sleep/wake machinery for idle workers.
    sleep_mutex: Mutex<()>,
    sleep_cond: Condvar,
}

impl Registry {
    /// Queue a job.  Worker threads of a WS pool push to their local deque;
    /// everything else goes through the global injector / priority pool.
    fn push_job(&self, label: PdfLabel, func: JobFn) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) as u64;
        self.pending.fetch_add(1, Ordering::Relaxed);
        match self.policy {
            Policy::WorkStealing => {
                let job = Job { label, func };
                // Worker threads push onto their own deque; everything else
                // (the main thread, helpers of another pool) goes through the
                // global injector.
                let leftover = LOCAL_DEQUE.with(|d| match d.borrow().as_ref() {
                    Some(deque) => {
                        deque.push(job);
                        None
                    }
                    None => Some(job),
                });
                if let Some(job) = leftover {
                    self.injector.push(job);
                }
            }
            Policy::Pdf => {
                self.pdf.lock().insert((label, seq), func);
            }
        }
        self.wake_one();
    }

    fn wake_one(&self) {
        let _guard = self.sleep_mutex.lock();
        self.sleep_cond.notify_one();
    }

    /// Find a job for the worker with the given index (`usize::MAX` for
    /// non-worker threads helping while they wait).
    fn pop_job(&self, index: usize) -> Option<(PdfLabel, JobFn)> {
        let found = match self.policy {
            Policy::WorkStealing => {
                // Local LIFO first, then the injector, then steal FIFO from
                // the other workers.
                let mut job: Option<Job> =
                    LOCAL_DEQUE.with(|d| d.borrow().as_ref().and_then(|deque| deque.pop()));
                if job.is_none() {
                    job = loop {
                        match self.injector.steal() {
                            Steal::Success(j) => break Some(j),
                            Steal::Empty => break None,
                            Steal::Retry => continue,
                        }
                    };
                }
                if job.is_none() {
                    let n = self.stealers.len();
                    'outer: for i in 0..n {
                        let victim = (index.wrapping_add(1).wrapping_add(i)) % n;
                        if victim == index {
                            continue;
                        }
                        loop {
                            match self.stealers[victim].steal() {
                                Steal::Success(j) => {
                                    job = Some(j);
                                    break 'outer;
                                }
                                Steal::Empty => break,
                                Steal::Retry => continue,
                            }
                        }
                    }
                }
                job.map(|j| (j.label, j.func))
            }
            Policy::Pdf => self
                .pdf
                .lock()
                .pop_first()
                .map(|((label, _), func)| (label, func)),
        };
        if found.is_some() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
        }
        found
    }

    fn has_work(&self) -> bool {
        self.pending.load(Ordering::Relaxed) > 0
    }
}

thread_local! {
    /// The local work-stealing deque of the current worker thread (WS pools).
    static LOCAL_DEQUE: RefCell<Option<Deque<Job>>> = const { RefCell::new(None) };
    /// The execution context of the current worker thread.
    static CURRENT: RefCell<Option<WorkerContext>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct WorkerContext {
    registry: Arc<Registry>,
    index: usize,
    /// Label of the job currently executing on this worker.
    label: PdfLabel,
    /// Number of children the current job has spawned so far.
    children: Arc<AtomicUsize>,
}

/// A completion flag that lets non-worker threads block and worker threads
/// help-while-waiting.
struct Latch {
    done: AtomicBool,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            done: AtomicBool::new(false),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        })
    }

    fn set(&self) {
        self.done.store(true, Ordering::Release);
        let _guard = self.mutex.lock();
        self.cond.notify_all();
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Block the calling (non-worker) thread until the latch is set.
    fn wait(&self) {
        let mut guard = self.mutex.lock();
        while !self.probe() {
            self.cond.wait(&mut guard);
        }
    }
}

/// A fork-join thread pool with a pluggable scheduling policy.
pub struct ThreadPool {
    registry: Arc<Registry>,
    workers: Vec<thread::JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Create a pool with `num_threads` worker threads (at least one) and the
    /// given policy.
    pub fn new(num_threads: usize, policy: Policy) -> Self {
        let num_threads = num_threads.max(1);
        let deques: Vec<Deque<Job>> = (0..num_threads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(Deque::stealer).collect();
        let registry = Arc::new(Registry {
            policy,
            injector: Injector::new(),
            stealers,
            pdf: Mutex::new(std::collections::BTreeMap::new()),
            pending: AtomicUsize::new(0),
            seq: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panics_caught: AtomicUsize::new(0),
            sleep_mutex: Mutex::new(()),
            sleep_cond: Condvar::new(),
        });
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let registry = Arc::clone(&registry);
                thread::Builder::new()
                    .name(format!("ccs-worker-{index}"))
                    .spawn(move || worker_loop(registry, index, deque))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            registry,
            workers,
            num_threads,
        }
    }

    /// The number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The scheduling policy.
    pub fn policy(&self) -> Policy {
        self.registry.policy
    }

    /// Number of detached-job panics caught at the pool boundary so far.
    ///
    /// `install`/`join` closures re-raise panics to their caller, so this
    /// counts only detached jobs ([`ThreadPool::spawn_detached`] and
    /// friends) whose panic would otherwise have killed a worker thread.
    pub fn panics_caught(&self) -> usize {
        self.registry.panics_caught.load(Ordering::Relaxed)
    }

    /// Run `f` on a worker thread of this pool and return its result.  Inside
    /// `f`, [`join`] and [`spawn`] use this pool.
    ///
    /// Must be called from *outside* the pool (e.g. the main thread); calling
    /// it from within one of the pool's own jobs can deadlock.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let latch = Latch::new();
        let result: Arc<Mutex<Option<thread::Result<R>>>> = Arc::new(Mutex::new(None));
        {
            let latch = Arc::clone(&latch);
            let result = Arc::clone(&result);
            // SAFETY (lifetime erasure): the job only borrows `f` and the two
            // Arcs, which live until this function returns; and the function
            // does not return until `latch.wait()` observes the latch set,
            // which happens strictly after the job has finished running.
            let func: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = panic::catch_unwind(AssertUnwindSafe(f));
                *result.lock() = Some(r);
                latch.set();
            });
            let func: JobFn = unsafe { std::mem::transmute(func) };
            self.registry.push_job(PdfLabel::root(), func);
        }
        latch.wait();
        let r = result
            .lock()
            .take()
            .expect("job completed without a result");
        match r {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Spawn a detached, `'static` job onto the pool with root priority.
    pub fn spawn_detached(&self, f: impl FnOnce() + Send + 'static) {
        self.registry.push_job(PdfLabel::root(), Box::new(f));
    }

    /// Spawn a detached job that is skipped if `token` is cancelled by the
    /// time a worker dequeues it.
    ///
    /// Cancellation is cooperative and coarse: a job that has already
    /// *started* runs to completion (there is no preemption), but a job
    /// still queued when the token trips is dropped unrun — including
    /// everything its closure captured, so e.g. a captured channel sender
    /// disconnects without sending.  This is exactly the "in-flight points
    /// finish, queued points are dropped" semantics the `ccs-serve` daemon
    /// exposes for request cancellation.
    pub fn spawn_cancellable(&self, token: &crate::CancelToken, f: impl FnOnce() + Send + 'static) {
        let token = token.clone();
        self.spawn_detached(move || {
            if !token.is_cancelled() {
                f();
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.registry.sleep_mutex.lock();
            self.registry.sleep_cond.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(registry: Arc<Registry>, index: usize, deque: Deque<Job>) {
    LOCAL_DEQUE.with(|d| *d.borrow_mut() = Some(deque));
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(WorkerContext {
            registry: Arc::clone(&registry),
            index,
            label: PdfLabel::root(),
            children: Arc::new(AtomicUsize::new(0)),
        });
    });
    loop {
        if let Some((label, func)) = registry.pop_job(index) {
            run_job_caught(&registry, label, func);
            continue;
        }
        if registry.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Nothing to do: sleep until new work arrives (bounded, so a lost
        // wakeup can never hang the pool).
        let mut guard = registry.sleep_mutex.lock();
        if !registry.has_work() && !registry.shutdown.load(Ordering::Acquire) {
            registry
                .sleep_cond
                .wait_for(&mut guard, std::time::Duration::from_millis(1));
        }
    }
}

/// Execute a job, making its label the current label for nested spawns.
fn run_job(label: PdfLabel, func: JobFn) {
    CURRENT.with(|c| {
        let mut ctx = c.borrow_mut();
        if let Some(ctx) = ctx.as_mut() {
            ctx.label = label;
            ctx.children = Arc::new(AtomicUsize::new(0));
        }
    });
    func();
}

/// [`run_job`] with the pool-boundary panic guard: a panicking *detached*
/// job is caught and counted instead of killing the worker (or unwinding
/// into an innocent `join` caller helping while it waits).  `install` and
/// `join` closures catch internally and re-raise at their call site, so
/// their panic semantics are unchanged.
fn run_job_caught(registry: &Registry, label: PdfLabel, func: JobFn) {
    if panic::catch_unwind(AssertUnwindSafe(|| run_job(label, func))).is_err() {
        registry.panics_caught.fetch_add(1, Ordering::Relaxed);
    }
}

fn current_context() -> Option<WorkerContext> {
    CURRENT.with(|c| c.borrow().clone())
}

fn restore_context(ctx: WorkerContext) {
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx));
}

/// Fork-join: run `a` and `b`, potentially in parallel, and return both
/// results.  Must be called from inside [`ThreadPool::install`] (or from a job
/// spawned there); outside a pool the two closures simply run sequentially on
/// the calling thread.
///
/// Under the PDF policy `b` is labelled as the next child of the current task,
/// so the pool-wide priority order of pending jobs always matches the order a
/// sequential execution would first reach them.  Under the WS policy `b` is
/// pushed onto the current worker's deque, where other workers can steal it
/// from the bottom.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let Some(ctx) = current_context() else {
        return (a(), b());
    };

    let latch = Latch::new();
    let b_result: Arc<Mutex<Option<thread::Result<RB>>>> = Arc::new(Mutex::new(None));
    let child_index = ctx.children.fetch_add(1, Ordering::Relaxed) as u32;
    let b_label = ctx.label.child(child_index);

    {
        let latch = Arc::clone(&latch);
        let b_result = Arc::clone(&b_result);
        // SAFETY (lifetime erasure): `b` may borrow from the caller's stack.
        // This is sound because `join` does not return until the latch is
        // observed set (see the help-while-waiting loop below), which happens
        // strictly after `b` has finished executing, so every borrow captured
        // by `b` outlives its execution.
        let func: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let r = panic::catch_unwind(AssertUnwindSafe(b));
            *b_result.lock() = Some(r);
            latch.set();
        });
        let func: JobFn = unsafe { std::mem::transmute(func) };
        ctx.registry.push_job(b_label, func);
    }

    // Run `a` inline.
    let a_result = panic::catch_unwind(AssertUnwindSafe(a));

    // Help execute other jobs until `b` is done (it may be running on another
    // worker, still queued, or popped right here by ourselves).
    while !latch.probe() {
        if let Some((label, func)) = ctx.registry.pop_job(ctx.index) {
            let saved = current_context();
            run_job_caught(&ctx.registry, label, func);
            if let Some(saved) = saved {
                restore_context(saved);
            }
        } else {
            std::hint::spin_loop();
            thread::yield_now();
        }
    }

    let b_result = b_result
        .lock()
        .take()
        .expect("join child finished without a result");
    match (a_result, b_result) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(p), _) | (_, Err(p)) => panic::resume_unwind(p),
    }
}

/// Spawn a detached `'static` job from inside the pool, labelled as the next
/// child of the current task.  Outside a pool the job runs inline.
pub fn spawn(f: impl FnOnce() + Send + 'static) {
    match current_context() {
        Some(ctx) => {
            let child_index = ctx.children.fetch_add(1, Ordering::Relaxed) as u32;
            let label = ctx.label.child(child_index);
            ctx.registry.push_job(label, Box::new(f));
        }
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pools() -> Vec<ThreadPool> {
        vec![
            ThreadPool::new(2, Policy::WorkStealing),
            ThreadPool::new(2, Policy::Pdf),
            ThreadPool::new(1, Policy::WorkStealing),
            ThreadPool::new(1, Policy::Pdf),
        ]
    }

    #[test]
    fn install_returns_value() {
        for pool in pools() {
            let v = pool.install(|| 21 * 2);
            assert_eq!(v, 42);
        }
    }

    #[test]
    fn join_computes_both_sides() {
        for pool in pools() {
            let (a, b) = pool.install(|| join(|| 1 + 1, || 2 + 2));
            assert_eq!((a, b), (2, 4));
        }
    }

    #[test]
    fn join_borrows_from_stack() {
        for pool in pools() {
            let mut left = vec![0u64; 100];
            let mut right = vec![0u64; 100];
            pool.install(|| {
                join(
                    || left.iter_mut().for_each(|x| *x += 1),
                    || right.iter_mut().for_each(|x| *x += 2),
                );
            });
            assert!(left.iter().all(|&x| x == 1));
            assert!(right.iter().all(|&x| x == 2));
        }
    }

    #[test]
    fn recursive_join_fibonacci() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        for pool in pools() {
            assert_eq!(pool.install(|| fib(16)), 987);
        }
    }

    #[test]
    fn deep_recursion_sums_correctly() {
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 64 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (a, b) = join(|| sum(range.start..mid), || sum(mid..range.end));
            a + b
        }
        let expect: u64 = (0..100_000).sum();
        for pool in pools() {
            assert_eq!(pool.install(|| sum(0..100_000)), expect);
        }
    }

    #[test]
    fn spawn_detached_runs() {
        for pool in pools() {
            let counter = Arc::new(AtomicU64::new(0));
            for _ in 0..16 {
                let c = Arc::clone(&counter);
                pool.spawn_detached(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            for _ in 0..2000 {
                if counter.load(Ordering::SeqCst) == 16 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(counter.load(Ordering::SeqCst), 16);
        }
    }

    #[test]
    fn spawn_cancellable_runs_when_live_and_skips_when_cancelled() {
        use crate::CancelToken;
        use std::sync::mpsc;

        // Live token: jobs run normally.
        let pool = ThreadPool::new(1, Policy::WorkStealing);
        let token = CancelToken::new();
        let counter = Arc::new(AtomicU64::new(0));
        {
            let c = Arc::clone(&counter);
            pool.spawn_cancellable(&token, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..2000 {
            if counter.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);

        // Cancelled-while-queued: block the single worker, queue jobs, trip
        // the token, then release the worker.  The queued closures must be
        // dropped unrun — observed through both the untouched counter and
        // the captured senders disconnecting without sending.
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.spawn_detached(move || {
                while !gate.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        let (tx, rx) = mpsc::channel::<u64>();
        for i in 0..4 {
            let c = Arc::clone(&counter);
            let tx = tx.clone();
            pool.spawn_cancellable(&token, move || {
                c.fetch_add(1, Ordering::SeqCst);
                tx.send(i).unwrap();
            });
        }
        drop(tx);
        token.cancel();
        gate.store(true, Ordering::Release);
        // Receiver disconnects once every queued job has been dropped unrun.
        assert_eq!(rx.iter().count(), 0);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_outside_pool_is_sequential() {
        let (a, b) = join(|| 5, || 7);
        assert_eq!((a, b), (5, 7));
    }

    #[test]
    fn panics_propagate_from_either_side() {
        let pool = ThreadPool::new(2, Policy::WorkStealing);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                join(|| 1, || -> i32 { panic!("boom") });
            })
        }));
        assert!(r.is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.install(|| 3), 3);
    }

    #[test]
    fn detached_panic_is_isolated_and_counted() {
        for pool in pools() {
            assert_eq!(pool.panics_caught(), 0);
            pool.spawn_detached(|| panic!("detached boom"));
            for _ in 0..2000 {
                if pool.panics_caught() == 1 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(pool.panics_caught(), 1);
            // Every worker survived: the pool still runs new work, both
            // detached and structured.
            let counter = Arc::new(AtomicU64::new(0));
            for _ in 0..8 {
                let c = Arc::clone(&counter);
                pool.spawn_detached(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            for _ in 0..2000 {
                if counter.load(Ordering::SeqCst) == 8 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(counter.load(Ordering::SeqCst), 8);
            assert_eq!(pool.install(|| 7 * 6), 42);
        }
    }

    #[test]
    fn nested_spawn_from_inside_pool() {
        for pool in pools() {
            let counter = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&counter);
            pool.install(move || {
                for _ in 0..8 {
                    let c = Arc::clone(&c2);
                    spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            for _ in 0..2000 {
                if counter.load(Ordering::SeqCst) == 8 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        }
    }

    #[test]
    fn pool_metadata() {
        let pool = ThreadPool::new(3, Policy::Pdf);
        assert_eq!(pool.num_threads(), 3);
        assert_eq!(pool.policy(), Policy::Pdf);
        let zero = ThreadPool::new(0, Policy::WorkStealing);
        assert_eq!(zero.num_threads(), 1, "clamped to one thread");
    }
}
