//! Sleep/wake machinery for idle pool workers: a packed atomic
//! sleep-state word plus a futex-style parking primitive.
//!
//! The design goal (DESIGN.md §14) is a **lock-free wake fast path**: a
//! thread publishing work must learn "is anybody asleep?" from a single
//! atomic load, touching a syscall or mutex only when a worker actually
//! needs waking.  The seed pool took a global mutex on *every* push; under
//! a fork-join workload every `join` is a push, so that mutex was the
//! hottest line in the runtime.
//!
//! # The sleep-state word
//!
//! One `AtomicU64` (the `counts` field) packs three counters,
//! sched-local style:
//!
//! ```text
//! [ reserved:16 | asleep:16 | sleepy:16 | idle:16 ]
//! ```
//!
//! * **idle** — workers out of work and spinning/yielding (diagnostic);
//! * **sleepy** — workers that have *announced* intent to sleep and are
//!   performing their final recheck;
//! * **asleep** — workers parked on the futex.
//!
//! A separate `AtomicU32` event counter (the `events` field) is the
//! futex word itself: it is bumped on every wake-worthy event, so a parked
//! (or about-to-park) worker can atomically detect "something happened
//! since I decided to sleep".
//!
//! # The wake protocol and why it cannot lose wakeups
//!
//! Worker going to sleep:
//!
//! 1. load `e = events` (SeqCst);
//! 2. announce sleepiness: `counts.sleepy += 1` (SeqCst RMW);
//! 3. **recheck** the work queues;
//! 4. if still empty, park on `futex_wait(events, e)` — the kernel (or the
//!    condvar fallback) re-checks `events == e` atomically with the sleep.
//!
//! Publisher:
//!
//! 1. make the work visible (SeqCst RMW on the pool's pending counter);
//! 2. load `counts` (SeqCst); if `sleepy + asleep == 0`, **done** — this is
//!    the fast path, one uncontended atomic load;
//! 3. otherwise bump `events` and `futex_wake` one worker.
//!
//! Correctness argument: suppose a worker parks and the publisher does not
//! wake it.  The worker's recheck (step 3) missed the job, so in the
//! sequentially-consistent order its recheck-load precedes the publisher's
//! work-publish RMW.  The worker's sleepy announcement (step 2, an RMW)
//! precedes its recheck, and the publisher's `counts` load (step 2)
//! follows its work-publish — so the publisher's load observes the
//! announcement and takes the slow path.  The slow path bumps `events`
//! after the worker loaded `e`, so either the bump lands before the
//! worker's `futex_wait` (which then returns immediately: `events != e`)
//! or the worker is already parked and the `futex_wake` lands it.  In
//! every interleaving one of the two sides sees the other.
//!
//! On Linux x86_64/aarch64 parking is a raw `futex(2)` syscall (no libc
//! needed); elsewhere a mutex + condvar pair keyed on the same event
//! counter provides identical semantics (the mutex is touched only on the
//! slow path, so the fast-path claim holds on every platform).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Bit offsets of the packed counters in [`SleepState::counts`].
const IDLE_SHIFT: u32 = 0;
const SLEEPY_SHIFT: u32 = 16;
const ASLEEP_SHIFT: u32 = 32;

/// One packed-counter increment at the given field offset.
const fn one(shift: u32) -> u64 {
    1u64 << shift
}

/// Mask selecting the sleepy and asleep fields — the "someone may need a
/// wakeup" test is `counts & NEEDS_WAKE != 0`.
const NEEDS_WAKE_MASK: u64 = (0xffff << SLEEPY_SHIFT) | (0xffff << ASLEEP_SHIFT);

/// A ticket returned by [`SleepState::announce_sleepy`]: the event-counter
/// value observed *before* the final queue recheck.  Parking with a stale
/// ticket returns immediately instead of sleeping.
#[derive(Clone, Copy, Debug)]
pub struct SleepTicket(u32);

/// The pool-global sleep state: packed idle/sleepy/asleep counters plus
/// the futex event word (see the module docs for the protocol).
pub struct SleepState {
    /// Packed `[asleep | sleepy | idle]` counters.
    counts: AtomicU64,
    /// The futex word: bumped on every wake-worthy event.
    events: Futex,
    /// Diagnostic: how many wakes took the slow path (an `events` bump plus
    /// a futex/condvar operation).  The no-sleeper fast path never touches
    /// it — asserted by the pool stress suite.
    slow_wakes: AtomicU64,
}

impl SleepState {
    /// A fresh state: everybody awake and busy.
    pub fn new() -> Self {
        SleepState {
            counts: AtomicU64::new(0),
            events: Futex::new(),
            slow_wakes: AtomicU64::new(0),
        }
    }

    /// A worker ran out of work and enters its spin/yield phase.
    pub fn start_idle(&self) {
        self.counts.fetch_add(one(IDLE_SHIFT), Ordering::SeqCst);
    }

    /// The idle worker found work (or shut down) and leaves the idle phase.
    pub fn end_idle(&self) {
        self.counts.fetch_sub(one(IDLE_SHIFT), Ordering::SeqCst);
    }

    /// Announce intent to sleep.  Must be followed by a queue recheck and
    /// then either [`SleepState::cancel_sleepy`] (work appeared) or
    /// [`SleepState::sleep`] (park on the returned ticket).
    pub fn announce_sleepy(&self) -> SleepTicket {
        let ticket = SleepTicket(self.events.load());
        self.counts.fetch_add(one(SLEEPY_SHIFT), Ordering::SeqCst);
        ticket
    }

    /// The final recheck found work: retract the sleepiness announcement.
    pub fn cancel_sleepy(&self) {
        self.counts.fetch_sub(one(SLEEPY_SHIFT), Ordering::SeqCst);
    }

    /// Park until an event invalidates `ticket` (or a spurious wake; the
    /// caller loops).  Converts the announced sleepiness into sleep for the
    /// duration of the park.
    pub fn sleep(&self, ticket: SleepTicket) {
        // sleepy -> asleep.  The publisher wakes on either counter, so the
        // order of this transition relative to its load is immaterial.
        self.counts.fetch_add(
            one(ASLEEP_SHIFT).wrapping_sub(one(SLEEPY_SHIFT)),
            Ordering::SeqCst,
        );
        self.events.wait(ticket.0);
        self.counts.fetch_sub(one(ASLEEP_SHIFT), Ordering::SeqCst);
    }

    /// The publisher-side wake: one SeqCst load on the fast path; an event
    /// bump plus one futex/condvar wake only when a worker is sleepy or
    /// asleep.
    #[inline]
    pub fn notify_one(&self) {
        if self.counts.load(Ordering::SeqCst) & NEEDS_WAKE_MASK == 0 {
            return;
        }
        self.slow_wakes.fetch_add(1, Ordering::Relaxed);
        self.events.bump();
        self.events.wake_one();
    }

    /// Unconditional broadcast: bump the event word and wake every parked
    /// worker.  Used for shutdown and configuration changes (pinning),
    /// never on the push path.
    pub fn notify_all(&self) {
        self.slow_wakes.fetch_add(1, Ordering::Relaxed);
        self.events.bump();
        self.events.wake_all();
    }

    /// Number of slow-path wakes so far (diagnostic; see the stress suite).
    pub fn slow_wakes(&self) -> u64 {
        self.slow_wakes.load(Ordering::Relaxed)
    }

    /// Snapshot of the packed counters as `(idle, sleepy, asleep)`.
    pub fn snapshot(&self) -> (u16, u16, u16) {
        let w = self.counts.load(Ordering::SeqCst);
        (
            (w >> IDLE_SHIFT) as u16,
            (w >> SLEEPY_SHIFT) as u16,
            (w >> ASLEEP_SHIFT) as u16,
        )
    }
}

impl Default for SleepState {
    fn default() -> Self {
        SleepState::new()
    }
}

/// A futex-style parking primitive over one `u32` word: `wait` sleeps only
/// while the word still holds the expected value; `bump` + `wake_*` make
/// waiters (re)check.  Raw `futex(2)` on Linux x86_64/aarch64, mutex +
/// condvar elsewhere.
struct Futex {
    word: AtomicU32,
    #[cfg(not(ccs_raw_syscalls))]
    fallback: FallbackParker,
}

// The raw-syscall path is gated on one cfg so the fallback is compiled (and
// unit-tested) everywhere else.  `--cfg ccs_raw_syscalls` is set from
// build.rs; see there for the platform condition.
impl Futex {
    fn new() -> Self {
        Futex {
            word: AtomicU32::new(0),
            #[cfg(not(ccs_raw_syscalls))]
            fallback: FallbackParker::new(),
        }
    }

    fn load(&self) -> u32 {
        self.word.load(Ordering::SeqCst)
    }

    fn bump(&self) {
        self.word.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(ccs_raw_syscalls)]
impl Futex {
    /// Park until the word differs from `expected` (kernel-checked
    /// atomically), a wake arrives, or a spurious return.
    fn wait(&self, expected: u32) {
        unsafe {
            futex_syscall(
                &self.word,
                sys::FUTEX_WAIT | sys::FUTEX_PRIVATE_FLAG,
                expected,
            );
        }
    }

    fn wake_one(&self) {
        unsafe {
            futex_syscall(&self.word, sys::FUTEX_WAKE | sys::FUTEX_PRIVATE_FLAG, 1);
        }
    }

    fn wake_all(&self) {
        // The wake count is a signed int in the kernel: i32::MAX means
        // "everyone" (u32::MAX would be -1, which wakes exactly one).
        unsafe {
            futex_syscall(
                &self.word,
                sys::FUTEX_WAKE | sys::FUTEX_PRIVATE_FLAG,
                i32::MAX as u32,
            );
        }
    }
}

#[cfg(ccs_raw_syscalls)]
mod sys {
    pub const FUTEX_WAIT: u32 = 0;
    pub const FUTEX_WAKE: u32 = 1;
    pub const FUTEX_PRIVATE_FLAG: u32 = 128;

    #[cfg(target_arch = "x86_64")]
    pub const SYS_FUTEX: u64 = 202;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_FUTEX: u64 = 98;
}

/// Raw `futex(2)` with a null timeout: `FUTEX_WAIT` blocks indefinitely
/// (until woken or `*uaddr != val`), `FUTEX_WAKE` wakes up to `val`
/// waiters.  The workspace vendors its dependencies, so the syscall is
/// issued directly rather than through libc.
///
/// # Safety
/// `word` must stay valid for the duration of the call (it does: the
/// `SleepState` lives in the pool registry, which outlives every worker).
#[cfg(ccs_raw_syscalls)]
unsafe fn futex_syscall(word: &AtomicU32, op: u32, val: u32) -> i64 {
    let uaddr = word as *const AtomicU32;
    let ret: i64;
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::asm!(
            "syscall",
            inlateout("rax") sys::SYS_FUTEX as i64 => ret,
            in("rdi") uaddr,
            in("rsi") op as u64,
            in("rdx") val as u64,
            in("r10") 0u64, // timeout: null = wait forever
            in("r8") 0u64,
            in("r9") 0u64,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    #[cfg(target_arch = "aarch64")]
    {
        let ret64: u64;
        std::arch::asm!(
            "svc 0",
            in("x8") sys::SYS_FUTEX,
            inlateout("x0") uaddr as u64 => ret64,
            in("x1") op as u64,
            in("x2") val as u64,
            in("x3") 0u64, // timeout
            in("x4") 0u64,
            in("x5") 0u64,
            options(nostack)
        );
        ret = ret64 as i64;
    }
    ret
}

/// The portable fallback parker: a mutex + condvar keyed on the shared
/// event word.  Only `wait` and the (already slow-path) wakes touch the
/// mutex, so the publisher fast path stays a single atomic load here too.
#[cfg(not(ccs_raw_syscalls))]
struct FallbackParker {
    mutex: parking_lot::Mutex<()>,
    cond: parking_lot::Condvar,
}

#[cfg(not(ccs_raw_syscalls))]
impl FallbackParker {
    fn new() -> Self {
        FallbackParker {
            mutex: parking_lot::Mutex::new(()),
            cond: parking_lot::Condvar::new(),
        }
    }
}

#[cfg(not(ccs_raw_syscalls))]
impl Futex {
    fn wait(&self, expected: u32) {
        let mut guard = self.fallback.mutex.lock();
        // Atomic-recheck equivalent of FUTEX_WAIT: a waker bumps the word
        // and notifies *while holding this mutex*, so between this check
        // and the wait there is no window for a silent bump.
        if self.word.load(Ordering::SeqCst) != expected {
            return;
        }
        self.fallback.cond.wait(&mut guard);
    }

    fn wake_one(&self) {
        let _guard = self.fallback.mutex.lock();
        self.fallback.cond.notify_one();
    }

    fn wake_all(&self) {
        let _guard = self.fallback.mutex.lock();
        self.fallback.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fast_path_is_silent_when_nobody_sleeps() {
        let state = SleepState::new();
        for _ in 0..1000 {
            state.notify_one();
        }
        assert_eq!(state.slow_wakes(), 0);
        assert_eq!(state.snapshot(), (0, 0, 0));
    }

    #[test]
    fn counters_pack_and_unpack() {
        let state = SleepState::new();
        state.start_idle();
        state.start_idle();
        let ticket = state.announce_sleepy();
        assert_eq!(state.snapshot(), (2, 1, 0));
        state.cancel_sleepy();
        assert_eq!(state.snapshot(), (2, 0, 0));
        state.end_idle();
        state.end_idle();
        assert_eq!(state.snapshot(), (0, 0, 0));
        // A ticket from before a bump parks without sleeping.  `sleep`
        // consumes the open sleepiness announcement either way.
        state.notify_all();
        state.announce_sleepy();
        state.sleep(ticket); // stale: returns immediately
        assert_eq!(state.snapshot(), (0, 0, 0));
    }

    #[test]
    fn stale_ticket_never_blocks() {
        let state = SleepState::new();
        let ticket = state.announce_sleepy();
        state.notify_one(); // slow path: a sleepy worker is visible
        assert_eq!(state.slow_wakes(), 1);
        // The event bump invalidated the ticket, so this returns at once
        // rather than parking forever (nobody else will wake us).
        state.sleep(ticket);
        assert_eq!(state.snapshot(), (0, 0, 0));
    }

    #[test]
    fn parked_thread_is_woken_by_notify() {
        let state = Arc::new(SleepState::new());
        let woke = Arc::new(AtomicBool::new(false));
        let handle = {
            let state = Arc::clone(&state);
            let woke = Arc::clone(&woke);
            std::thread::spawn(move || {
                let ticket = state.announce_sleepy();
                state.sleep(ticket);
                woke.store(true, Ordering::SeqCst);
            })
        };
        // Wait until the worker is really asleep, then wake it.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while state.snapshot().2 == 0 {
            assert!(std::time::Instant::now() < deadline, "never fell asleep");
            std::thread::yield_now();
        }
        state.notify_one();
        handle.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
        assert_eq!(state.snapshot(), (0, 0, 0));
        assert!(state.slow_wakes() >= 1);
    }

    #[test]
    fn notify_all_releases_every_sleeper() {
        let state = Arc::new(SleepState::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    let ticket = state.announce_sleepy();
                    state.sleep(ticket);
                })
            })
            .collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while state.snapshot().2 != 4 {
            assert!(std::time::Instant::now() < deadline, "sleepers missing");
            std::thread::yield_now();
        }
        state.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(state.snapshot(), (0, 0, 0));
    }
}
