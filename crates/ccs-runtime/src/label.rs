//! Online sequential-priority labels for the native PDF policy.
//!
//! The trace-driven experiments know every task's 1DF rank because the whole
//! DAG is materialised up front.  A live runtime cannot do that, so the PDF
//! policy labels each task with its *path* in the dynamic fork tree: the label of
//! a task spawned as the `i`-th child of a task labelled `L` is `L ++ [i]`.
//! Lexicographic order on these labels is exactly the order a sequential
//! (depth-first, spawn-order) execution would first reach the tasks, which is
//! the priority PDF needs — this is the spirit of the online algorithms of
//! [6, 7, 28] cited by the paper.

/// A hierarchical sequential-priority label.
///
/// Smaller labels (lexicographically) correspond to tasks the sequential
/// program would execute earlier.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PdfLabel(Vec<u32>);

impl PdfLabel {
    /// The label of the root task.
    pub fn root() -> Self {
        PdfLabel(Vec::new())
    }

    /// The label of this task's `child_index`-th spawned child.
    pub fn child(&self, child_index: u32) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(child_index);
        PdfLabel(v)
    }

    /// Depth of the label in the fork tree.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The raw path components.
    pub fn path(&self) -> &[u32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_order_matches_spawn_order() {
        let root = PdfLabel::root();
        let c0 = root.child(0);
        let c1 = root.child(1);
        assert!(c0 < c1);
        assert!(root < c0, "a parent precedes its children sequentially");
    }

    #[test]
    fn descendants_of_earlier_children_precede_later_children() {
        let root = PdfLabel::root();
        let c0 = root.child(0);
        let c1 = root.child(1);
        let deep = c0.child(5).child(7);
        assert!(
            deep < c1,
            "everything under child 0 runs before child 1 sequentially"
        );
        assert_eq!(deep.depth(), 3);
        assert_eq!(deep.path(), &[0, 5, 7]);
    }

    #[test]
    fn labels_are_stable_keys() {
        let a = PdfLabel::root().child(3);
        let b = PdfLabel::root().child(3);
        assert_eq!(a, b);
    }
}
