//! Native fork-join runtime with pluggable Work-Stealing and Parallel-Depth-
//! First scheduling policies.
//!
//! The trace-driven experiments of the paper run on a simulated CMP
//! (`ccs-sim`); this crate is the *runnable* counterpart: a small rayon-style
//! thread pool whose scheduling discipline can be switched between the two
//! policies the paper compares, so the library is usable as an actual
//! runtime and the policies can be exercised on real hardware.
//!
//! * [`ThreadPool::new(n, Policy::WorkStealing)`](ThreadPool::new) — per-worker
//!   crossbeam deques, local LIFO pops, FIFO steals;
//! * [`ThreadPool::new(n, Policy::Pdf)`](ThreadPool::new) — a global priority
//!   pool ordered by online sequential-priority labels ([`PdfLabel`]), so idle
//!   workers always take the task a sequential execution would reach first.
//!
//! ```
//! use ccs_runtime::{join, Policy, ThreadPool};
//!
//! let pool = ThreadPool::new(2, Policy::Pdf);
//! let (a, b) = pool.install(|| join(|| (1..=10).sum::<u32>(), || 6 * 7));
//! assert_eq!((a, b), (55, 42));
//! ```
//!
//! Detached work can be tied to a [`CancelToken`] — the sweep-service
//! daemon uses this to drop queued simulation points unrun when a
//! request is cancelled (tokens form a tree; cancelling a parent
//! cancels every child):
//!
//! ```
//! use ccs_runtime::CancelToken;
//!
//! let root = CancelToken::new();
//! let child = root.child();
//! assert!(!child.is_cancelled());
//! root.cancel();
//! assert!(child.is_cancelled()); // spawn_cancellable would skip the job
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cancel;
pub mod fault;
pub mod label;
pub mod pool;
pub mod sleep;

pub use cancel::CancelToken;
pub use fault::{FaultKind, FaultPlan};
pub use label::PdfLabel;
pub use pool::{join, spawn, Policy, ThreadPool};
