//! Deterministic, seed-driven fault injection for the serving path.
//!
//! A [`FaultPlan`] names a set of *injection points* and, for each, the rate
//! at which it fires.  The plan is installed process-globally (at most once,
//! typically from the `CCS_FAULT_PLAN` environment variable or a
//! `--fault-plan` flag) and every decision it makes is a pure function of
//! `(seed, injection point, occurrence index)` — two runs under the same
//! plan inject the same faults at the same occurrence counts, so a CI job
//! can pin a hostile schedule and expect reproducible survival.
//!
//! When no plan is installed every hook is a no-op behind one relaxed
//! atomic load ([`active`]), so production binaries pay nothing — and the
//! simulator hot loop carries no hooks at all; only the serving path
//! (workload builds, store writes, session writers) is instrumented.
//!
//! The spec grammar is a comma-separated key=value list:
//!
//! ```text
//! seed=7,build-panic=0.5,store-io=0.3,torn-write=0.5,close-session=0.05,slow-session-ms=2
//! ```
//!
//! * `seed` — the plan seed (default 0);
//! * `build-panic` — probability that a workload build panics
//!   ([`FaultKind::WorkloadBuild`]);
//! * `store-io` — probability that a result-store write fails with an I/O
//!   error ([`FaultKind::StoreIo`]);
//! * `torn-write` — probability that a result-store entry lands truncated,
//!   as a crash mid-write would leave it ([`FaultKind::TornWrite`]);
//! * `close-session` — probability that a session's write half closes
//!   abruptly before a frame, as a vanished client looks from the server
//!   ([`FaultKind::SessionClose`]);
//! * `slow-session-ms` — fixed delay before every session frame write.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable the daemon reads a fault plan spec from.
pub const ENV_VAR: &str = "CCS_FAULT_PLAN";

/// An injection point of the serving path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside a workload build (user factories can panic).
    WorkloadBuild,
    /// An I/O error out of a result-store write.
    StoreIo,
    /// A torn (truncated) result-store entry, bypassing the atomic-rename
    /// protocol the way a crashed legacy writer would.
    TornWrite,
    /// Abrupt close of a session's write half mid-stream.
    SessionClose,
}

impl FaultKind {
    const ALL: [FaultKind; 4] = [
        FaultKind::WorkloadBuild,
        FaultKind::StoreIo,
        FaultKind::TornWrite,
        FaultKind::SessionClose,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::WorkloadBuild => 0,
            FaultKind::StoreIo => 1,
            FaultKind::TornWrite => 2,
            FaultKind::SessionClose => 3,
        }
    }

    /// The spec-grammar key of this injection point.
    pub fn spec_name(self) -> &'static str {
        match self {
            FaultKind::WorkloadBuild => "build-panic",
            FaultKind::StoreIo => "store-io",
            FaultKind::TornWrite => "torn-write",
            FaultKind::SessionClose => "close-session",
        }
    }
}

/// A parsed fault plan: per-point rates plus the session write delay.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; 4],
    slow_session: Option<Duration>,
}

impl FaultPlan {
    /// Parse the comma-separated `key=value` spec grammar (see the module
    /// docs).  The error string names the offending token.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 0,
            rates: [0.0; 4],
            slow_session: None,
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan token {part:?} is not key=value"))?;
            let rate = |value: &str| -> Result<f64, String> {
                let rate: f64 = value
                    .parse()
                    .map_err(|_| format!("fault rate {value:?} is not a number"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("fault rate {value} is outside 0..=1"));
                }
                Ok(rate)
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault plan seed {value:?} is not an integer"))?;
                }
                "slow-session-ms" => {
                    let ms: u64 = value.parse().map_err(|_| {
                        format!("slow-session-ms value {value:?} is not an integer")
                    })?;
                    plan.slow_session = (ms > 0).then(|| Duration::from_millis(ms));
                }
                key => {
                    let kind = FaultKind::ALL
                        .into_iter()
                        .find(|k| k.spec_name() == key)
                        .ok_or_else(|| {
                            format!(
                                "unknown fault plan key {key:?} (expected seed, slow-session-ms, \
                                 build-panic, store-io, torn-write or close-session)"
                            )
                        })?;
                    plan.rates[kind.index()] = rate(value)?;
                }
            }
        }
        Ok(plan)
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rate of an injection point.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind.index()]
    }

    /// The configured per-frame session write delay, if any.
    pub fn slow_session(&self) -> Option<Duration> {
        self.slow_session
    }

    /// Whether the `n`-th occurrence of `kind` injects — a pure function of
    /// the plan, so schedules replay exactly.
    pub fn fires(&self, kind: FaultKind, n: u64) -> bool {
        let rate = self.rates[kind.index()];
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let salt = splitmix64(self.seed ^ (kind.index() as u64 + 1).wrapping_mul(0x9e37_79b9));
        let draw = splitmix64(salt ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d));
        (draw as f64) < rate * (u64::MAX as f64)
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static PLAN: OnceLock<FaultPlan> = OnceLock::new();
static ACTIVE: AtomicBool = AtomicBool::new(false);
static COUNTERS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Install `plan` process-globally.  At most one plan per process; a second
/// install fails rather than silently replacing the schedule mid-run.
pub fn install(plan: FaultPlan) -> Result<(), String> {
    PLAN.set(plan)
        .map_err(|_| "a fault plan is already installed".to_string())?;
    ACTIVE.store(true, Ordering::Release);
    Ok(())
}

/// Install the plan named by [`ENV_VAR`], if set and non-empty.  Returns
/// whether a plan was installed; a malformed spec is an error.
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => {
            install(FaultPlan::parse(&spec)?)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Whether a fault plan is installed — the one-load fast path every hook
/// checks first.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// The installed plan, if any.
pub fn plan() -> Option<&'static FaultPlan> {
    if !active() {
        return None;
    }
    PLAN.get()
}

/// Whether this occurrence of `kind` injects, advancing the occurrence
/// counter.  Always `false` (and free of side effects beyond one atomic
/// load) when no plan is installed.
pub fn should_inject(kind: FaultKind) -> bool {
    let Some(plan) = plan() else {
        return false;
    };
    let n = COUNTERS[kind.index()].fetch_add(1, Ordering::Relaxed);
    plan.fires(kind, n)
}

/// Panic (with a marked message) when this occurrence of `kind` injects.
pub fn inject_panic(kind: FaultKind) {
    if should_inject(kind) {
        panic!("injected fault: {}", kind.spec_name());
    }
}

/// An injected I/O error when this occurrence of `kind` fires, else `None`.
pub fn injected_io_error(kind: FaultKind) -> Option<std::io::Error> {
    should_inject(kind)
        .then(|| std::io::Error::other(format!("injected fault: {}", kind.spec_name())))
}

/// The plan's per-frame session write delay, if a plan with one is active.
pub fn session_write_delay() -> Option<Duration> {
    plan().and_then(FaultPlan::slow_session)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_round_trips() {
        let plan = FaultPlan::parse(
            "seed=42, build-panic=0.5,store-io=0.25,torn-write=1,close-session=0,slow-session-ms=3",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rate(FaultKind::WorkloadBuild), 0.5);
        assert_eq!(plan.rate(FaultKind::StoreIo), 0.25);
        assert_eq!(plan.rate(FaultKind::TornWrite), 1.0);
        assert_eq!(plan.rate(FaultKind::SessionClose), 0.0);
        assert_eq!(plan.slow_session(), Some(Duration::from_millis(3)));

        // An empty spec is the all-zero plan.
        let nil = FaultPlan::parse("").unwrap();
        assert_eq!(nil.rates, [0.0; 4]);
        assert_eq!(nil.slow_session(), None);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "build-panic",          // not key=value
            "warp-drive=0.5",       // unknown key
            "build-panic=2.0",      // rate out of range
            "build-panic=lots",     // not a number
            "seed=minus-one",       // not an integer
            "slow-session-ms=soon", // not an integer
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan::parse("seed=7,build-panic=0.5").unwrap();
        let again = FaultPlan::parse("seed=7,build-panic=0.5").unwrap();
        let trials = 10_000u64;
        let mut fired = 0u64;
        for n in 0..trials {
            let hit = plan.fires(FaultKind::WorkloadBuild, n);
            assert_eq!(hit, again.fires(FaultKind::WorkloadBuild, n), "replayable");
            fired += hit as u64;
        }
        // A 50% rate lands near 50% over many draws.
        assert!((4_000..6_000).contains(&fired), "{fired} of {trials}");
        // Edge rates are exact.
        let edges = FaultPlan::parse("torn-write=1,store-io=0").unwrap();
        for n in 0..100 {
            assert!(edges.fires(FaultKind::TornWrite, n));
            assert!(!edges.fires(FaultKind::StoreIo, n));
        }
        // A different seed yields a different schedule.
        let other = FaultPlan::parse("seed=8,build-panic=0.5").unwrap();
        assert!(
            (0..trials).any(|n| {
                plan.fires(FaultKind::WorkloadBuild, n) != other.fires(FaultKind::WorkloadBuild, n)
            }),
            "seeds must matter"
        );
    }

    #[test]
    fn hooks_are_noops_without_a_plan() {
        // The global plan may have been installed by another test in this
        // process; the pure checks below do not depend on it.
        if !active() {
            assert!(!should_inject(FaultKind::StoreIo));
            assert!(injected_io_error(FaultKind::StoreIo).is_none());
            assert!(session_write_delay().is_none());
            inject_panic(FaultKind::WorkloadBuild); // must not panic
        }
    }
}
