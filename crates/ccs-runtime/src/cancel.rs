//! Cooperative cancellation tokens for pool work.
//!
//! The fork-join pool executes jobs to completion — there is no preemption,
//! and none is wanted: a half-simulated sweep point is worthless.  What the
//! `ccs-serve` daemon needs is coarser: when a client cancels a request,
//! the request's *queued* points must be dropped before they start, while
//! in-flight points run to completion and are kept (they are valid,
//! memoisable results).
//!
//! A [`CancelToken`] is that boundary.  Jobs submitted with
//! [`ThreadPool::spawn_cancellable`](crate::ThreadPool::spawn_cancellable)
//! check their token at the moment a worker dequeues them; a cancelled job's
//! closure is dropped *unrun*.  Dropping the closure also drops everything
//! it captured — in particular any channel sender, which is how the daemon
//! observes that a point will never report: the receiver disconnects once
//! every outstanding sender (finished or dropped-unrun) is gone.
//!
//! Tokens form a tree: [`CancelToken::child`] makes a token that trips when
//! either it or any ancestor is cancelled, so a daemon can hang per-request
//! tokens off one drain-all root and cancel a single request or the whole
//! service with the same mechanism.
//!
//! ```
//! use ccs_runtime::CancelToken;
//!
//! let root = CancelToken::new();
//! let request = root.child();
//! assert!(!request.is_cancelled());
//! root.cancel(); // drain: every request token trips
//! assert!(request.is_cancelled());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Inner {
    cancelled: AtomicBool,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let mut ancestor = self.parent.as_deref();
        while let Some(inner) = ancestor {
            if inner.cancelled.load(Ordering::Acquire) {
                return true;
            }
            ancestor = inner.parent.as_deref();
        }
        false
    }
}

/// A shareable, hierarchical cancellation flag.
///
/// Cloning shares the flag; [`CancelToken::child`] derives a token that also
/// observes every ancestor's flag.  Cancellation is one-way and sticky.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled root token.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                parent: None,
            }),
        }
    }

    /// Derive a child token: cancelled when *either* it or any ancestor is.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Trip this token (and therefore every token derived from it).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether this token or any of its ancestors has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_and_cancel_sticks() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "sticky");
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn children_observe_ancestors_but_not_vice_versa() {
        let root = CancelToken::new();
        let mid = root.child();
        let leaf = mid.child();
        let sibling = root.child();

        // Cancelling a leaf leaves everyone else alone.
        leaf.cancel();
        assert!(leaf.is_cancelled());
        assert!(!mid.is_cancelled());
        assert!(!root.is_cancelled());
        assert!(!sibling.is_cancelled());

        // Cancelling the root trips the whole tree.
        root.cancel();
        assert!(mid.is_cancelled());
        assert!(sibling.is_cancelled());
    }
}
