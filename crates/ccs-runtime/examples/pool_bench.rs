//! Raw-runtime throughput probe: recursive fork-join `fib` and a
//! spawn-heavy fan-out on a [`ccs_runtime::ThreadPool`], printed as
//! tasks/sec.  The bench harness (`run_all --bench`) embeds the same
//! kernels as gated `runtime/*` records; this example is the standalone
//! A/B probe (`cargo run --release -p ccs-runtime --example pool_bench`).
//!
//! Flags: `--threads N` (default 4), `--rounds N` (default 5, best-of),
//! `--fib N` (default 24), `--spawns N` (default 50000),
//! `--policy ws|pdf` (default ws), `--pinned`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ccs_runtime::{join, Policy, ThreadPool};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// Number of `fib` call nodes the recursion visits (each is one task).
fn fib_nodes(n: u64) -> u64 {
    if n < 2 {
        1
    } else {
        1 + fib_nodes(n - 1) + fib_nodes(n - 2)
    }
}

fn main() {
    let mut threads = 4usize;
    let mut rounds = 5u32;
    let mut fib_n = 24u64;
    let mut spawns = 50_000u64;
    let mut policy = Policy::WorkStealing;
    let mut pinned = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--threads" => threads = value("--threads").parse().expect("--threads"),
            "--rounds" => rounds = value("--rounds").parse().expect("--rounds"),
            "--fib" => fib_n = value("--fib").parse().expect("--fib"),
            "--spawns" => spawns = value("--spawns").parse().expect("--spawns"),
            "--pinned" => pinned = true,
            "--policy" => {
                policy = match value("--policy").as_str() {
                    "ws" => Policy::WorkStealing,
                    "pdf" => Policy::Pdf,
                    other => panic!("unknown policy {other:?}"),
                }
            }
            other => panic!("unknown flag {other:?}"),
        }
    }

    let pool = ThreadPool::new(threads, policy).pinned(pinned);
    let nodes = fib_nodes(fib_n);

    // Fork-join: recursive binary join, one task per fib node.
    let mut best_ms = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        let v = pool.install(|| fib(fib_n));
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(v, naive_fib(fib_n));
        best_ms = best_ms.min(ms);
    }
    println!(
        "forkjoin_fib: fib({fib_n}) = {nodes} tasks, best {best_ms:.1} ms, {:.0} tasks/s",
        nodes as f64 / (best_ms / 1000.0)
    );

    // Spawn-heavy fan-out: detached jobs racing the sleep/wake path.
    let mut best_ms = f64::INFINITY;
    for _ in 0..rounds {
        let counter = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        for _ in 0..spawns {
            let c = Arc::clone(&counter);
            pool.spawn_detached(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        while counter.load(Ordering::Relaxed) != spawns {
            std::hint::spin_loop();
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        best_ms = best_ms.min(ms);
    }
    println!(
        "spawn_fanout: {spawns} jobs, best {best_ms:.1} ms, {:.0} jobs/s",
        spawns as f64 / (best_ms / 1000.0)
    );
}

fn naive_fib(n: u64) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let next = a + b;
        a = b;
        b = next;
    }
    a
}
