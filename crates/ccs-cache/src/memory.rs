//! Off-chip main-memory model: fixed latency plus bounded bandwidth.
//!
//! Table 1 of the paper specifies main memory by two numbers: a 300-cycle
//! access latency and a 30-cycle *service rate*.  We model the memory
//! controller as a single server that starts at most one request every
//! `service_interval` cycles; a request issued at time `t` therefore completes
//! at `max(t, controller_free) + latency`, and the fraction of cycles the
//! controller is busy is the *bandwidth utilisation* the paper reports
//! (e.g. Hash Join using "89.5%–97.3% of the available memory bandwidth").

use crate::config::MemoryConfig;

/// Statistics of the memory model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Number of requests serviced.
    pub requests: u64,
    /// Cycles the controller spent busy (requests × service interval).
    pub busy_cycles: u64,
    /// Total cycles requests spent queued before the controller accepted them.
    pub queue_cycles: u64,
}

/// The off-chip memory controller.
#[derive(Clone, Debug)]
pub struct MainMemory {
    config: MemoryConfig,
    /// Earliest cycle at which the controller can start the next request.
    next_free: u64,
    stats: MemoryStats,
}

impl MainMemory {
    /// A controller with the given timing.
    pub fn new(config: MemoryConfig) -> Self {
        MainMemory {
            config,
            next_free: 0,
            stats: MemoryStats::default(),
        }
    }

    /// The configured timing.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Issue a request at cycle `now`; returns the cycle at which the data is
    /// available (queueing + latency included).
    pub fn request(&mut self, now: u64) -> u64 {
        let start = now.max(self.next_free);
        self.stats.queue_cycles += start - now;
        self.next_free = start + self.config.service_interval;
        self.stats.requests += 1;
        self.stats.busy_cycles += self.config.service_interval;
        start + self.config.latency
    }

    /// Fraction of `total_cycles` during which the controller was busy
    /// (clamped to 1.0; the paper reports this as memory bandwidth
    /// utilisation).
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            (self.stats.busy_cycles as f64 / total_cycles as f64).min(1.0)
        }
    }

    /// Reset the controller to an idle, zero-statistics state.
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.stats = MemoryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency() {
        let mut m = MainMemory::new(MemoryConfig::paper_default());
        assert_eq!(m.request(1000), 1300);
        assert_eq!(m.stats().queue_cycles, 0);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut m = MainMemory::new(MemoryConfig::paper_default());
        // Two requests in the same cycle: the second waits one service slot.
        assert_eq!(m.request(0), 300);
        assert_eq!(m.request(0), 330);
        assert_eq!(m.stats().queue_cycles, 30);
        assert_eq!(m.stats().requests, 2);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut m = MainMemory::new(MemoryConfig::paper_default());
        assert_eq!(m.request(0), 300);
        assert_eq!(m.request(50), 350);
        assert_eq!(m.stats().queue_cycles, 0);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut m = MainMemory::new(MemoryConfig {
            latency: 100,
            service_interval: 10,
        });
        for i in 0..10 {
            m.request(i * 20);
        }
        // 10 requests * 10 busy cycles over 200 cycles = 50%.
        assert!((m.utilization(200) - 0.5).abs() < 1e-12);
        // Saturated case is clamped to 1.0.
        assert!(m.utilization(50) <= 1.0);
        assert_eq!(m.utilization(0), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = MainMemory::new(MemoryConfig::paper_default());
        m.request(0);
        m.reset();
        assert_eq!(m.stats().requests, 0);
        assert_eq!(m.request(0), 300);
    }
}
