//! LRU stack-distance models.
//!
//! The working-set profiler of Section 6.1 needs, for every memory reference,
//! the *LRU stack distance* of the referenced line: the number of distinct
//! lines accessed since the previous access to that line.  A fully-associative
//! LRU cache of capacity `K` lines hits exactly when the distance is `< K`,
//! so one pass over a trace yields the miss counts for *every* cache size at
//! once.
//!
//! Three implementations are provided:
//!
//! * [`NaiveLruStack`] — a `Vec`-backed stack with `O(n)` accesses, used as the
//!   reference model in tests;
//! * [`OrderStatStack`] — the paper's `LruTree` structure: the LRU stack with a
//!   counted search tree on top so that distance queries and moves-to-front
//!   cost `O(log n)`.  We use a treap with parent pointers in place of the
//!   paper's B-tree; the asymptotics and the one-pass property are identical;
//! * [`FenwickStack`] — the classic Bennett–Kruskal algorithm: a Fenwick tree
//!   over access timestamps with periodic compaction, also `O(log n)`.

use std::collections::HashMap;

/// Common interface of the stack-distance models.
pub trait StackDistanceModel {
    /// Access `line`, returning its LRU stack distance **before** the access
    /// (0 means the line was the most recently used), or `None` if the line
    /// has never been accessed (a cold miss at every cache size).
    fn access(&mut self, line: u64) -> Option<u64>;

    /// Number of distinct lines seen so far.
    fn num_lines(&self) -> usize;
}

// ---------------------------------------------------------------------------
// Naive reference implementation
// ---------------------------------------------------------------------------

/// `O(n)`-per-access reference implementation of the LRU stack.
#[derive(Clone, Debug, Default)]
pub struct NaiveLruStack {
    /// Front (index 0) is the most recently used line.
    stack: Vec<u64>,
}

impl NaiveLruStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StackDistanceModel for NaiveLruStack {
    fn access(&mut self, line: u64) -> Option<u64> {
        if let Some(pos) = self.stack.iter().position(|&l| l == line) {
            self.stack.remove(pos);
            self.stack.insert(0, line);
            Some(pos as u64)
        } else {
            self.stack.insert(0, line);
            None
        }
    }

    fn num_lines(&self) -> usize {
        self.stack.len()
    }
}

// ---------------------------------------------------------------------------
// Order-statistic treap ("LruTree")
// ---------------------------------------------------------------------------

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct TreapNode {
    left: u32,
    right: u32,
    parent: u32,
    prio: u64,
    size: u32,
    line: u64,
}

/// The paper's `LruTree`: an LRU stack augmented with a counted tree so a
/// reference's stack distance can be computed and the line moved to the top
/// in `O(log n)`.
///
/// Internally this is an *implicit treap* (tree ordered by stack position,
/// heap-ordered by random priorities) stored in an arena, with parent pointers
/// so the rank of a node can be recovered from a handle by walking to the
/// root.
#[derive(Clone, Debug)]
pub struct OrderStatStack {
    nodes: Vec<TreapNode>,
    free: Vec<u32>,
    root: u32,
    handles: HashMap<u64, u32>,
    rng_state: u64,
}

impl Default for OrderStatStack {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderStatStack {
    /// An empty stack.
    pub fn new() -> Self {
        OrderStatStack {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            handles: HashMap::new(),
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// An empty stack with space pre-reserved for `capacity` lines.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut s = Self::new();
        s.nodes.reserve(capacity);
        s.handles.reserve(capacity);
        s
    }

    fn next_prio(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    #[inline]
    fn size(&self, i: u32) -> u32 {
        if i == NIL {
            0
        } else {
            self.nodes[i as usize].size
        }
    }

    #[inline]
    fn update(&mut self, i: u32) {
        let l = self.size(self.nodes[i as usize].left);
        let r = self.size(self.nodes[i as usize].right);
        self.nodes[i as usize].size = 1 + l + r;
    }

    #[inline]
    fn set_left(&mut self, p: u32, c: u32) {
        self.nodes[p as usize].left = c;
        if c != NIL {
            self.nodes[c as usize].parent = p;
        }
    }

    #[inline]
    fn set_right(&mut self, p: u32, c: u32) {
        self.nodes[p as usize].right = c;
        if c != NIL {
            self.nodes[c as usize].parent = p;
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            if b != NIL {
                self.nodes[b as usize].parent = NIL;
            }
            return b;
        }
        if b == NIL {
            self.nodes[a as usize].parent = NIL;
            return a;
        }
        if self.nodes[a as usize].prio > self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let r = self.merge(ar, b);
            self.set_right(a, r);
            self.update(a);
            self.nodes[a as usize].parent = NIL;
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let l = self.merge(a, bl);
            self.set_left(b, l);
            self.update(b);
            self.nodes[b as usize].parent = NIL;
            b
        }
    }

    /// Split into (first `k` nodes, rest).
    fn split(&mut self, t: u32, k: u32) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        let left_size = self.size(self.nodes[t as usize].left);
        if left_size >= k {
            let tl = self.nodes[t as usize].left;
            let (l, r) = self.split(tl, k);
            self.set_left(t, r);
            self.update(t);
            self.nodes[t as usize].parent = NIL;
            if l != NIL {
                self.nodes[l as usize].parent = NIL;
            }
            (l, t)
        } else {
            let tr = self.nodes[t as usize].right;
            let (l, r) = self.split(tr, k - left_size - 1);
            self.set_right(t, l);
            self.update(t);
            self.nodes[t as usize].parent = NIL;
            if r != NIL {
                self.nodes[r as usize].parent = NIL;
            }
            (t, r)
        }
    }

    /// Stack position of the node `h` (0 = top of stack).
    fn rank(&self, h: u32) -> u64 {
        let mut r = self.size(self.nodes[h as usize].left) as u64;
        let mut cur = h;
        loop {
            let p = self.nodes[cur as usize].parent;
            if p == NIL {
                break;
            }
            if self.nodes[p as usize].right == cur {
                r += self.size(self.nodes[p as usize].left) as u64 + 1;
            }
            cur = p;
        }
        r
    }

    fn alloc_node(&mut self, line: u64) -> u32 {
        let prio = self.next_prio();
        if let Some(idx) = self.free.pop() {
            let n = &mut self.nodes[idx as usize];
            n.left = NIL;
            n.right = NIL;
            n.parent = NIL;
            n.prio = prio;
            n.size = 1;
            n.line = line;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(TreapNode {
                left: NIL,
                right: NIL,
                parent: NIL,
                prio,
                size: 1,
                line,
            });
            idx
        }
    }

    /// The line currently at the bottom of the stack (the LRU line), if any.
    pub fn lru_line(&self) -> Option<u64> {
        if self.root == NIL {
            return None;
        }
        let mut cur = self.root;
        while self.nodes[cur as usize].right != NIL {
            cur = self.nodes[cur as usize].right;
        }
        Some(self.nodes[cur as usize].line)
    }

    /// Remove and return the LRU (bottom) line.  Used when this structure
    /// backs a bounded LRU cache rather than an unbounded profiler stack.
    pub fn pop_lru(&mut self) -> Option<u64> {
        let n = self.size(self.root);
        if n == 0 {
            return None;
        }
        let (rest, last) = self.split(self.root, n - 1);
        self.root = rest;
        debug_assert_eq!(self.size(last), 1);
        let line = self.nodes[last as usize].line;
        self.handles.remove(&line);
        self.free.push(last);
        Some(line)
    }

    /// The current stack contents from most- to least-recently used
    /// (an `O(n)` operation, intended for tests and debugging).
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.size(self.root) as usize);
        // Iterative in-order traversal.
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let n = stack.pop().unwrap();
            out.push(self.nodes[n as usize].line);
            cur = self.nodes[n as usize].right;
        }
        out
    }
}

impl StackDistanceModel for OrderStatStack {
    fn access(&mut self, line: u64) -> Option<u64> {
        if let Some(&h) = self.handles.get(&line) {
            let r = self.rank(h);
            // Remove the node at rank r ...
            let (a, bc) = self.split(self.root, r as u32);
            let (b, c) = self.split(bc, 1);
            debug_assert_eq!(b, h, "rank/handle mismatch in OrderStatStack");
            let rest = self.merge(a, c);
            // ... and reinsert it at the top of the stack.
            self.nodes[h as usize].left = NIL;
            self.nodes[h as usize].right = NIL;
            self.nodes[h as usize].parent = NIL;
            self.nodes[h as usize].size = 1;
            self.root = self.merge(h, rest);
            Some(r)
        } else {
            let h = self.alloc_node(line);
            self.handles.insert(line, h);
            self.root = self.merge(h, self.root);
            None
        }
    }

    fn num_lines(&self) -> usize {
        self.handles.len()
    }
}

// ---------------------------------------------------------------------------
// Bennett–Kruskal Fenwick-tree implementation
// ---------------------------------------------------------------------------

/// Bennett–Kruskal stack-distance algorithm: a Fenwick (binary indexed) tree
/// over access timestamps.  Each live line owns the slot of its most recent
/// access; the stack distance of a reference is the number of occupied slots
/// after the line's previous timestamp.  Timestamps are compacted when the
/// slot array fills up.
#[derive(Clone, Debug)]
pub struct FenwickStack {
    /// Fenwick tree (1-based) over slots; `bit[i]` stores partial sums of
    /// occupancy.
    bit: Vec<i64>,
    /// slot -> line occupying it (0 = free).  Slot 0 is unused.
    slot_line: Vec<u64>,
    /// line -> slot of its most recent access.
    last_slot: HashMap<u64, usize>,
    /// Next slot to assign.
    next_slot: usize,
}

impl Default for FenwickStack {
    fn default() -> Self {
        Self::new()
    }
}

impl FenwickStack {
    /// An empty model with a small initial slot capacity.
    pub fn new() -> Self {
        Self::with_slot_capacity(1 << 12)
    }

    /// An empty model with the given initial number of timestamp slots.
    pub fn with_slot_capacity(slots: usize) -> Self {
        let slots = slots.max(16);
        FenwickStack {
            bit: vec![0; slots + 1],
            slot_line: vec![0; slots + 1],
            last_slot: HashMap::new(),
            next_slot: 1,
        }
    }

    fn capacity(&self) -> usize {
        self.bit.len() - 1
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.bit.len() {
            self.bit[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.bit[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Re-number live lines 1..=n in stack order (oldest first) and rebuild
    /// the Fenwick tree.  Called when the slot array is exhausted.
    fn compact(&mut self) {
        let mut live: Vec<(usize, u64)> = self
            .last_slot
            .iter()
            .map(|(&line, &slot)| (slot, line))
            .collect();
        live.sort_unstable();
        let needed = live.len() * 2 + 16;
        let new_cap = self.capacity().max(needed);
        self.bit = vec![0; new_cap + 1];
        self.slot_line = vec![0; new_cap + 1];
        self.last_slot.clear();
        self.next_slot = 1;
        for (_, line) in live {
            let slot = self.next_slot;
            self.next_slot += 1;
            self.last_slot.insert(line, slot);
            self.slot_line[slot] = line;
            self.add(slot, 1);
        }
    }
}

impl StackDistanceModel for FenwickStack {
    fn access(&mut self, line: u64) -> Option<u64> {
        if self.next_slot > self.capacity() {
            self.compact();
        }
        let new_slot = self.next_slot;
        self.next_slot += 1;
        let result = if let Some(&old) = self.last_slot.get(&line) {
            // Number of occupied slots strictly after `old`.
            let total = self.prefix(self.capacity());
            let upto = self.prefix(old);
            let distance = (total - upto) as u64;
            self.add(old, -1);
            self.slot_line[old] = 0;
            Some(distance)
        } else {
            None
        };
        self.last_slot.insert(line, new_slot);
        self.slot_line[new_slot] = line;
        self.add(new_slot, 1);
        result
    }

    fn num_lines(&self) -> usize {
        self.last_slot.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distances<M: StackDistanceModel>(model: &mut M, trace: &[u64]) -> Vec<Option<u64>> {
        trace.iter().map(|&l| model.access(l)).collect()
    }

    #[test]
    fn naive_known_sequence() {
        let mut m = NaiveLruStack::new();
        let d = distances(&mut m, &[1, 2, 3, 1, 2, 2, 3]);
        assert_eq!(
            d,
            vec![None, None, None, Some(2), Some(2), Some(0), Some(2)]
        );
        assert_eq!(m.num_lines(), 3);
    }

    #[test]
    fn treap_matches_naive_on_known_sequence() {
        let trace = [1u64, 2, 3, 1, 2, 2, 3, 4, 1, 4, 3, 2, 1];
        let mut naive = NaiveLruStack::new();
        let mut treap = OrderStatStack::new();
        assert_eq!(distances(&mut naive, &trace), distances(&mut treap, &trace));
    }

    #[test]
    fn fenwick_matches_naive_on_known_sequence() {
        let trace = [1u64, 2, 3, 1, 2, 2, 3, 4, 1, 4, 3, 2, 1];
        let mut naive = NaiveLruStack::new();
        let mut fen = FenwickStack::with_slot_capacity(16); // force compactions
        assert_eq!(distances(&mut naive, &trace), distances(&mut fen, &trace));
    }

    #[test]
    fn all_models_agree_on_pseudorandom_trace() {
        // Deterministic pseudo-random trace with a skewed reuse pattern.
        let mut x: u64 = 12345;
        let mut trace = Vec::new();
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            trace.push(x % 257);
        }
        let mut naive = NaiveLruStack::new();
        let mut treap = OrderStatStack::new();
        let mut fen = FenwickStack::with_slot_capacity(64);
        let dn = distances(&mut naive, &trace);
        let dt = distances(&mut treap, &trace);
        let df = distances(&mut fen, &trace);
        assert_eq!(dn, dt);
        assert_eq!(dn, df);
        assert_eq!(naive.num_lines(), treap.num_lines());
        assert_eq!(naive.num_lines(), fen.num_lines());
    }

    #[test]
    fn treap_stack_order_matches_naive() {
        let mut x: u64 = 999;
        let mut naive = NaiveLruStack::new();
        let mut treap = OrderStatStack::new();
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 97;
            naive.access(line);
            treap.access(line);
        }
        assert_eq!(treap.to_vec(), naive.stack);
    }

    #[test]
    fn treap_pop_lru_removes_bottom() {
        let mut treap = OrderStatStack::new();
        for l in [10u64, 20, 30] {
            treap.access(l);
        }
        assert_eq!(treap.lru_line(), Some(10));
        assert_eq!(treap.pop_lru(), Some(10));
        assert_eq!(treap.num_lines(), 2);
        // 10 is gone, so re-accessing it is a cold access.
        assert_eq!(treap.access(10), None);
    }

    #[test]
    fn repeated_single_line_distance_zero() {
        let mut treap = OrderStatStack::new();
        assert_eq!(treap.access(5), None);
        for _ in 0..100 {
            assert_eq!(treap.access(5), Some(0));
        }
        assert_eq!(treap.num_lines(), 1);
    }

    #[test]
    fn streaming_scan_has_no_reuse() {
        let mut fen = FenwickStack::new();
        for l in 0..10_000u64 {
            assert_eq!(fen.access(l), None);
        }
        assert_eq!(fen.num_lines(), 10_000);
    }

    #[test]
    fn cyclic_scan_distance_equals_working_set() {
        // Scanning N lines cyclically gives distance N-1 after the first lap.
        let n = 64u64;
        let mut treap = OrderStatStack::new();
        let mut fen = FenwickStack::with_slot_capacity(32);
        for lap in 0..4 {
            for l in 0..n {
                let expect = if lap == 0 { None } else { Some(n - 1) };
                assert_eq!(treap.access(l), expect);
                assert_eq!(fen.access(l), expect);
            }
        }
    }
}
