//! Line-ownership directory for the CMP coherence model.
//!
//! The simulator models coherence as write-invalidation of remote L1
//! copies.  The seed implementation broadcast every store to all `p`
//! private L1s (`O(p)` per store, almost always finding nothing); this
//! directory tracks, per cache line, the set of cores whose L1 may hold a
//! copy, so a store only visits those — `O(sharers)` per store, and zero
//! work for the common private-line case.
//!
//! Since the trace-arena rework the event engine resolves addresses to
//! dense line ids up front and keeps its sharer masks in a flat
//! id-indexed array (see `ccs-sim::machine` and DESIGN.md §8), so this
//! address-keyed map is no longer on the simulator's hot path.  It
//! remains the general-purpose form of the same structure — same sharer
//! semantics, same staleness contract — for callers that do not have a
//! dense id space.
//!
//! # Sharer masks past 64 cores
//!
//! Up to 64 cores, a line's sharer set is one `u64`.  Beyond that the
//! directory switches to the **hierarchical mask** of DESIGN.md §12: per
//! line, a *summary word* whose bit `w` says "core word `w` is non-empty",
//! followed by `ceil(p/64)` core words.  A store walks only the summary's
//! set bits and then only the named words, so invalidation work stays
//! `O(sharers)` instead of `O(p/64)` at 256–4096 cores.  The summary caps
//! the directory at [`MAX_DIRECTORY_CORES`] = 64 × 64 = 4096 cores.
//!
//! The sharer sets are a deliberate **over-approximation**: bits are set on
//! every L1 allocation but *not* cleared on eviction (clearing happens only
//! when a store prunes the set via [`LineDirectory::retain_only`], or via
//! an explicit [`LineDirectory::remove`]).  The invariant the simulator
//! relies on is one-directional:
//!
//! > core `c`'s L1 holds `line` ⇒ `holds(line, c)`.
//!
//! A stale bit merely sends one extra invalidation to a core that no
//! longer has the line — a no-op in [`SetAssocCache`] — so simulations
//! driven through the directory are metrics-identical to the broadcast,
//! while the miss path pays a single map operation (no delete traffic).
//! That choice also lets the map use flat open addressing with no
//! tombstones.
//!
//! [`SetAssocCache`]: crate::SetAssocCache

/// Cores are identified by their index; the hierarchical mask (one 64-bit
/// summary word over 64 core words) caps the directory at 4096 cores.
pub const MAX_DIRECTORY_CORES: usize = 64 * 64;

/// Key stored in empty slots.  Real keys are line-aligned addresses (line
/// size at least 2), so `u64::MAX` — an odd address — can never collide;
/// the entry points `debug_assert` it anyway.
const EMPTY_KEY: u64 = u64::MAX;

/// Which cores may hold a copy of each cache line (an over-approximation;
/// see the module docs).
///
/// ```
/// use ccs_cache::LineDirectory;
///
/// let mut dir = LineDirectory::new(4);
/// dir.insert(0x1000, 0);
/// dir.insert(0x1000, 2);
/// assert_eq!(dir.sharers_except(0x1000, 0).collect::<Vec<_>>(), vec![2]);
/// dir.retain_only(0x1000, 0); // after core 0's store invalidated the rest
/// assert_eq!(dir.sharers_except(0x1000, 0).count(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct LineDirectory {
    /// Line address per slot (`EMPTY_KEY` = free); power-of-two length.
    keys: Vec<u64>,
    /// Sharer mask words, `stride` per slot.  `stride == 1`: the slot's
    /// single word is the sharer set.  `stride > 1`: the slot's words are
    /// `[summary, w0, .., w_{k-1}]` (the hierarchical layout above).
    masks: Vec<u64>,
    /// Mask words per slot: 1 up to 64 cores, else `1 + ceil(p/64)`.
    stride: usize,
    /// Occupied slots (including ones whose mask has been pruned to 0).
    occupied: usize,
}

impl LineDirectory {
    /// An empty directory for a `num_cores`-core machine.
    ///
    /// # Panics
    /// Panics if `num_cores` exceeds [`MAX_DIRECTORY_CORES`].
    pub fn new(num_cores: usize) -> Self {
        assert!(
            num_cores <= MAX_DIRECTORY_CORES,
            "LineDirectory supports at most {MAX_DIRECTORY_CORES} cores, got {num_cores}"
        );
        let stride = if num_cores <= 64 {
            1
        } else {
            1 + num_cores.div_ceil(64)
        };
        LineDirectory {
            keys: vec![EMPTY_KEY; 1024],
            masks: vec![0; 1024 * stride],
            stride,
            occupied: 0,
        }
    }

    /// Multiplicative hash of a line address into a slot index.
    #[inline]
    fn slot_of(&self, line: u64) -> usize {
        let h = line.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & (self.keys.len() - 1)
    }

    /// Find the slot holding `line`, or the free slot where it belongs.
    #[inline]
    fn probe(&self, line: u64) -> usize {
        let mut slot = self.slot_of(line);
        loop {
            let key = self.keys[slot];
            if key == line || key == EMPTY_KEY {
                return slot;
            }
            slot = (slot + 1) & (self.keys.len() - 1);
        }
    }

    /// Set `core`'s bit in `slot`'s mask (and the summary when hierarchical).
    #[inline]
    fn set_bit(&mut self, slot: usize, core: usize) {
        if self.stride == 1 {
            self.masks[slot] |= 1u64 << core;
        } else {
            let base = slot * self.stride;
            self.masks[base + 1 + core / 64] |= 1u64 << (core % 64);
            self.masks[base] |= 1u64 << (core / 64);
        }
    }

    /// Whether `slot` has any sharer bit set.
    #[inline]
    fn slot_nonempty(&self, slot: usize) -> bool {
        // The summary word is kept exact by every mutator, so it answers
        // for the whole hierarchical slot.
        self.masks[slot * self.stride] != 0
    }

    /// Record that `core`'s L1 now holds `line`.
    #[inline]
    pub fn insert(&mut self, line: u64, core: usize) {
        debug_assert_ne!(line, EMPTY_KEY, "line collides with the empty key");
        let slot = self.probe(line);
        if self.keys[slot] == EMPTY_KEY {
            self.keys[slot] = line;
            self.occupied += 1;
            if self.occupied * 8 > self.keys.len() * 7 {
                self.set_bit(slot, core);
                self.grow();
                return;
            }
        }
        self.set_bit(slot, core);
    }

    /// Double the table (keeps all entries; amortised by the load factor).
    #[cold]
    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; 0]);
        let old_masks = std::mem::take(&mut self.masks);
        let stride = self.stride;
        let new_len = old_keys.len() * 2;
        self.keys = vec![EMPTY_KEY; new_len];
        self.masks = vec![0; new_len * stride];
        self.occupied = 0;
        for (old_slot, key) in old_keys.into_iter().enumerate() {
            let words = &old_masks[old_slot * stride..(old_slot + 1) * stride];
            if key != EMPTY_KEY && words[0] != 0 {
                let slot = self.probe(key);
                debug_assert_eq!(self.keys[slot], EMPTY_KEY);
                self.keys[slot] = key;
                self.masks[slot * stride..(slot + 1) * stride].copy_from_slice(words);
                self.occupied += 1;
            }
        }
    }

    /// Record that `core`'s L1 no longer holds `line`.  The simulator's hot
    /// path does *not* call this on evictions (staleness is tolerated, see
    /// the module docs); it exists for callers that want exact sets.
    #[inline]
    pub fn remove(&mut self, line: u64, core: usize) {
        let slot = self.probe(line);
        if self.keys[slot] != line {
            return;
        }
        if self.stride == 1 {
            self.masks[slot] &= !(1u64 << core);
        } else {
            let base = slot * self.stride;
            let word = base + 1 + core / 64;
            self.masks[word] &= !(1u64 << (core % 64));
            if self.masks[word] == 0 {
                self.masks[base] &= !(1u64 << (core / 64));
            }
        }
    }

    /// Whether `core`'s L1 may hold `line` (never false when it does).
    #[inline]
    pub fn holds(&self, line: u64, core: usize) -> bool {
        let slot = self.probe(line);
        if self.keys[slot] != line {
            return false;
        }
        if self.stride == 1 {
            self.masks[slot] & (1u64 << core) != 0
        } else {
            self.masks[slot * self.stride + 1 + core / 64] & (1u64 << (core % 64)) != 0
        }
    }

    /// The cores other than `core` that may hold `line`, in ascending
    /// order.  This is the set a store from `core` must invalidate.
    ///
    /// For a hierarchical directory the walk visits only the core words the
    /// summary names — `O(sharers)` regardless of the core count.
    #[inline]
    pub fn sharers_except(&self, line: u64, core: usize) -> impl Iterator<Item = usize> {
        let slot = self.probe(line);
        // Snapshot the slot's core words with the writer's bit cleared.
        // The flat (≤ 64 cores) path stays allocation-free.
        let (mut mask, rest): (u64, Vec<u64>) = if self.keys[slot] != line {
            (0, Vec::new())
        } else if self.stride == 1 {
            (self.masks[slot] & !(1u64 << core), Vec::new())
        } else {
            let base = slot * self.stride;
            let mut words = self.masks[base + 1..base + self.stride].to_vec();
            words[core / 64] &= !(1u64 << (core % 64));
            (words[0], words.split_off(1))
        };
        let mut word = 0usize;
        std::iter::from_fn(move || loop {
            if mask != 0 {
                let bit = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                return Some(word * 64 + bit);
            }
            if word >= rest.len() {
                return None;
            }
            mask = rest[word];
            word += 1;
        })
    }

    /// Drop every sharer of `line` except `core` (what a store from `core`
    /// leaves behind after invalidating the others).  This is also where
    /// stale bits get pruned.
    #[inline]
    pub fn retain_only(&mut self, line: u64, core: usize) {
        let slot = self.probe(line);
        if self.keys[slot] != line {
            return;
        }
        if self.stride == 1 {
            self.masks[slot] &= 1u64 << core;
        } else {
            let base = slot * self.stride;
            let my_word = core / 64;
            let mut summary = self.masks[base];
            while summary != 0 {
                let w = summary.trailing_zeros() as usize;
                summary &= summary - 1;
                if w == my_word {
                    self.masks[base + 1 + w] &= 1u64 << (core % 64);
                } else {
                    self.masks[base + 1 + w] = 0;
                }
            }
            self.masks[base] = if self.masks[base + 1 + my_word] != 0 {
                1u64 << my_word
            } else {
                0
            };
        }
    }

    /// Number of lines with at least one (possibly stale) sharer bit —
    /// diagnostics/tests only.
    pub fn tracked_lines(&self) -> usize {
        (0..self.keys.len())
            .filter(|&slot| self.keys[slot] != EMPTY_KEY && self.slot_nonempty(slot))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_holds() {
        let mut d = LineDirectory::new(8);
        assert!(!d.holds(128, 3));
        d.insert(128, 3);
        d.insert(128, 5);
        assert!(d.holds(128, 3));
        assert!(d.holds(128, 5));
        assert!(!d.holds(128, 0));
        d.remove(128, 3);
        assert!(!d.holds(128, 3));
        assert!(d.holds(128, 5));
        d.remove(128, 5);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn sharers_except_skips_the_writer() {
        let mut d = LineDirectory::new(8);
        for core in [0, 2, 6] {
            d.insert(256, core);
        }
        assert_eq!(d.sharers_except(256, 2).collect::<Vec<_>>(), vec![0, 6]);
        assert_eq!(d.sharers_except(256, 1).collect::<Vec<_>>(), vec![0, 2, 6]);
        assert_eq!(d.sharers_except(512, 0).count(), 0, "untracked line");
    }

    #[test]
    fn retain_only_models_a_store() {
        let mut d = LineDirectory::new(4);
        for core in 0..4 {
            d.insert(64, core);
        }
        d.retain_only(64, 1);
        assert!(d.holds(64, 1));
        assert_eq!(d.sharers_except(64, 1).count(), 0);
        // A store from a core that does not hold the line clears the set.
        d.retain_only(64, 3);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn removing_an_untracked_line_is_a_noop() {
        let mut d = LineDirectory::new(2);
        d.remove(0, 1);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn supports_the_full_64_core_mask() {
        let mut d = LineDirectory::new(64);
        d.insert(0, 0);
        d.insert(0, 63);
        assert_eq!(d.sharers_except(0, 0).collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn hierarchical_masks_track_many_core_sharers() {
        let mut d = LineDirectory::new(1024);
        for core in [0, 63, 64, 130, 1023] {
            d.insert(4096, core);
        }
        assert!(d.holds(4096, 130));
        assert!(!d.holds(4096, 129));
        assert_eq!(
            d.sharers_except(4096, 64).collect::<Vec<_>>(),
            vec![0, 63, 130, 1023],
            "ascending across core words, writer skipped"
        );
        d.remove(4096, 1023);
        assert!(!d.holds(4096, 1023));
        d.retain_only(4096, 130);
        assert!(d.holds(4096, 130));
        assert_eq!(d.sharers_except(4096, 130).count(), 0);
        assert_eq!(d.tracked_lines(), 1);
        // A store from a non-holder clears the line entirely.
        d.retain_only(4096, 9);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn hierarchical_directory_grows_past_the_initial_capacity() {
        let mut d = LineDirectory::new(256);
        let n = 5_000u64;
        for i in 0..n {
            d.insert(i * 128, (i % 256) as usize);
        }
        assert_eq!(d.tracked_lines(), n as usize);
        for i in 0..n {
            assert!(
                d.holds(i * 128, (i % 256) as usize),
                "line {i} lost in growth"
            );
        }
    }

    #[test]
    fn grows_past_the_initial_capacity() {
        let mut d = LineDirectory::new(8);
        let n = 10_000u64;
        for i in 0..n {
            d.insert(i * 128, (i % 8) as usize);
        }
        assert_eq!(d.tracked_lines(), n as usize);
        for i in 0..n {
            assert!(
                d.holds(i * 128, (i % 8) as usize),
                "line {i} lost in growth"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at most 4096 cores")]
    fn rejects_too_many_cores() {
        let _ = LineDirectory::new(4097);
    }
}
