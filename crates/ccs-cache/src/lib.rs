//! Cache and memory models for the CCS (constructive cache sharing)
//! reproduction of Chen et al., SPAA 2007.
//!
//! This crate provides the storage-hierarchy substrate used by the CMP
//! simulator ([`ccs-sim`](../ccs_sim/index.html)) and by the working-set
//! profiler ([`ccs-profile`](../ccs_profile/index.html)):
//!
//! * [`CacheConfig`] / [`MemoryConfig`] — geometry and timing (Table 1);
//! * [`SetAssocCache`] — set-associative, true-LRU, write-back cache used for
//!   private L1s and the shared L2;
//! * [`CompiledCache`] — the id-native twin of `SetAssocCache`, probed by
//!   `(set, u32 tag)` pairs precompiled from dense line ids — the form the
//!   simulator's hot loop uses so it never touches an address;
//! * [`IdealCache`] — fully-associative LRU cache used by the analytical
//!   results (Theorem 3.1) and the profiler;
//! * [`OrderStatStack`], [`FenwickStack`], [`NaiveLruStack`] — LRU
//!   stack-distance models; `OrderStatStack` is the paper's *LruTree*
//!   structure with `O(log n)` per-reference cost;
//! * [`MainMemory`] — off-chip latency + bounded-bandwidth model;
//! * [`LineDirectory`] — per-line sharer tracking so the simulator's
//!   write-invalidation costs `O(sharers)` instead of a broadcast over all
//!   cores; one mask word up to 64 cores, hierarchical summary-plus-core
//!   words up to 4096 (DESIGN.md §12).
//!
//! # Example
//!
//! A direct-mapped-style probe sequence on the set-associative model, and
//! sharer tracking on a machine wider than one mask word:
//!
//! ```
//! use ccs_cache::{CacheConfig, LineDirectory, SetAssocCache};
//! use ccs_dag::AccessKind;
//!
//! // 4 KB, 2-way, 64 B lines: 32 sets.
//! let mut l1 = SetAssocCache::new(CacheConfig::new(4 * 1024, 64, 2, 1));
//! assert!(!l1.access_addr(0x0000, AccessKind::Read).hit); // cold miss
//! assert!(l1.access_addr(0x0000, AccessKind::Read).hit);
//! assert!(!l1.access_addr(0x1000, AccessKind::Write).hit); // same set, new tag
//! assert_eq!(l1.stats().misses, 2);
//!
//! // 96 cores: past the 64-bit mask, the directory switches to
//! // hierarchical masks and stays O(sharers) per store.
//! let mut dir = LineDirectory::new(96);
//! dir.insert(7, 3);
//! dir.insert(7, 90);
//! let sharers: Vec<usize> = dir.sharers_except(7, 3).collect();
//! assert_eq!(sharers, vec![90]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compiled;
pub mod config;
pub mod directory;
pub mod ideal;
pub mod memory;
pub mod setassoc;
pub mod stack;
pub mod stats;

pub use compiled::{line_tag, CompiledCache};
pub use config::{CacheConfig, MemoryConfig};
pub use directory::LineDirectory;
pub use ideal::IdealCache;
pub use memory::{MainMemory, MemoryStats};
pub use setassoc::{AccessOutcome, SetAssocCache};
pub use stack::{FenwickStack, NaiveLruStack, OrderStatStack, StackDistanceModel};
pub use stats::CacheStats;
