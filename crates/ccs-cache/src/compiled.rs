//! The id-native compiled cache: the probe path of [`SetAssocCache`]
//! specialised for callers that resolved their addresses to dense `u32`
//! line ids up front.
//!
//! The CMP simulator's hot loop probes a cache once per line-granular
//! trace step.  With the precompiled line streams of `ccs-dag::stream`
//! every step already carries a dense line id, and the per-geometry
//! `set_index` lane maps that id straight to a set — so the address is
//! never needed: the *line id itself* is a perfect tag (two distinct
//! lines always have distinct ids, in any set), and it fits in 31 bits by
//! construction (`STEP_ID_MASK`).  [`CompiledCache`] exploits that:
//!
//! * tags are `u32` — half the bytes of [`SetAssocCache`]'s `u64` line
//!   tags, so a 16-way set's tag array is a single 64-byte cache line on
//!   the host and the probe scan touches half the memory;
//! * a probe takes `(set, tag)` directly — no line masking, no shift/mask
//!   or modulo set indexing, no address table load;
//! * probes report a bare `bool` hit — eviction bookkeeping stays in the
//!   statistics, where the simulator reads it.
//!
//! Layout and replacement are **identical** to [`SetAssocCache`]:
//! positional true LRU (each set kept MRU→LRU in one flat array, victim =
//! last way, empties as the suffix) with the dirty bit folded into tag
//! bit 0.  Tags passed in must therefore be *pre-shifted* line ids —
//! [`line_tag`] (`id << 1`) — leaving bit 0 free.  Every statistics
//! decision (hit/miss, eviction, write-back) matches `SetAssocCache`
//! probe-for-probe; the engine-equivalence suite pins the two models (and
//! the retained reference `RefCache`) metrics-identical.
//!
//! [`SetAssocCache`]: crate::SetAssocCache

use crate::stats::CacheStats;

/// The tag a caller passes for line id `id`: the id shifted left one bit
/// so the dirty flag can fold into bit 0.  Ids are dense and unique per
/// line, which makes them valid tags for *any* set geometry.
///
/// The id must be **strictly below `0x7FFF_FFFF`** (the line-stream
/// compiler's `STEP_ID_MASK` bound, which its interner enforces): the
/// shift then cannot overflow, and the resulting tag stays at least 2
/// away from the empty-way sentinel (`u32::MAX`), so no tag can alias it
/// even with the dirty bit folded in.  The one 31-bit value *at* the
/// bound, `0x7FFF_FFFF`, would shift to `0xFFFF_FFFE` and falsely match
/// an empty way — hence the strict inequality, asserted here in debug
/// builds rather than trusted to the caller.
#[inline]
pub const fn line_tag(id: u32) -> u32 {
    debug_assert!(id < 0x7FFF_FFFF, "line id at/above the tag bound");
    id << 1
}

/// Tag stored in empty ways.  Real tags are pre-shifted ids strictly
/// below the [`line_tag`] bound, so `tag ^ INVALID_TAG > DIRTY_BIT`
/// always holds and an empty way can never look like a match even with
/// the dirty bit folded into bit 0.
const INVALID_TAG: u32 = u32::MAX;

/// Dirty flag, folded into bit 0 of the stored tag (free because
/// [`line_tag`] pre-shifts the id).
const DIRTY_BIT: u32 = 1;

/// A set-associative, true-LRU, write-back cache probed by `(set, u32
/// tag)` instead of by address — the id-native twin of
/// [`SetAssocCache`](crate::SetAssocCache) (see the module docs).
#[derive(Clone, Debug)]
pub struct CompiledCache {
    /// Tag per way (`line_tag(id) | DIRTY_BIT`), `num_sets × assoc` flat;
    /// each set ordered MRU→LRU with `INVALID_TAG` (empty) ways as the
    /// suffix.
    tags: Vec<u32>,
    stats: CacheStats,
    assoc: usize,
}

impl CompiledCache {
    /// Create an empty (cold) cache of `num_sets` sets ×
    /// `associativity` ways.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(num_sets: u64, associativity: u32) -> Self {
        assert!(num_sets > 0, "need at least one set");
        assert!(associativity > 0, "associativity must be positive");
        let assoc = associativity as usize;
        CompiledCache {
            tags: vec![INVALID_TAG; (num_sets * assoc as u64) as usize],
            stats: CacheStats::default(),
            assoc,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (the contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Flush the contents (cold cache) without touching statistics.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    /// Heap bytes held by the tag array.
    pub fn heap_bytes(&self) -> u64 {
        (self.tags.capacity() * std::mem::size_of::<u32>()) as u64
    }

    /// Start index of `set` in the flat way array.
    #[inline]
    fn set_base(&self, set: u32) -> usize {
        set as usize * self.assoc
    }

    /// Position of `tag` within its set (0 = MRU), if resident.  MRU way
    /// first — re-touches of the most recent line are the most common
    /// probe — then a **first-match, early-exit** scan: a line is resident
    /// in at most one way, so the first match is the only match, the
    /// average hit scans half the set, and the branchy exit keeps LLVM
    /// from auto-vectorising the loop into an index-tracking reduction
    /// (measured as a net loss at 4–32 ways: the vector prologue, blends
    /// and horizontal max cost more than the 3–31 scalar compares they
    /// replace).
    #[inline(always)]
    fn find_pos(&self, base: usize, tag: u32) -> Option<usize> {
        let set = &self.tags[base..base + self.assoc];
        // `stored ^ tag` is 0 or DIRTY_BIT on a match (tags have bit 0
        // clear) and > DIRTY_BIT on a mismatch: distinct pre-shifted ids
        // differ above bit 0, and the empty sentinel keeps bit 1 set
        // against any 31-bit pre-shifted id.
        if set[0] ^ tag <= DIRTY_BIT {
            return Some(0);
        }
        set.iter()
            .skip(1)
            .position(|&stored| stored ^ tag <= DIRTY_BIT)
            .map(|i| i + 1)
    }

    /// One-pass move-to-front probe: install `new_front` at the MRU way
    /// and ripple the previous occupants down until the probed tag's old
    /// copy (a hit — its position is the ripple's length), an empty way
    /// (a miss with a free way), or the end of the set (a miss evicting
    /// the rippled-out LRU way).
    ///
    /// This fuses the two passes a find-then-rotate probe makes over the
    /// set (`find_pos` + `touch`/`allocate_front`): a hit at position `j`
    /// still touches `j + 1` ways, but a **miss** touches each way once
    /// instead of twice — and misses dominate the L2 traffic of the
    /// sweeps this simulator exists for.  Returns `Some(old stored tag)`
    /// on a hit (so the caller can fold its dirty bit forward), `None` on
    /// a miss; on an evicting miss the eviction is recorded.
    ///
    /// The caller must already have handled the MRU way (`ways[0]`).
    #[inline(always)]
    fn ripple_insert(&mut self, base: usize, tag: u32, new_front: u32) -> Option<u32> {
        let ways = &mut self.tags[base..base + self.assoc];
        let mut prev = ways[0];
        ways[0] = new_front;
        let mut i = 1;
        while i < ways.len() {
            let cur = ways[i];
            ways[i] = prev;
            if cur ^ tag <= DIRTY_BIT {
                // Hit: the line's old copy leaves position `i`, its
                // more-recent neighbours have all shifted down one.
                return Some(cur);
            }
            if cur == INVALID_TAG {
                // Miss into the empty suffix: the ripple consumed one
                // empty way and the suffix invariant still holds.
                return None;
            }
            prev = cur;
            i += 1;
        }
        // Miss, full set: `prev` rippled out of the last way.  It can
        // only be the empty sentinel when the set is 1-way and was empty.
        if prev != INVALID_TAG {
            self.stats.record_eviction(prev & DIRTY_BIT != 0);
        }
        None
    }

    /// Probe the cache: returns whether the line was resident, touching
    /// LRU state, the folded dirty bit and the statistics exactly as
    /// [`SetAssocCache::access_line`](crate::SetAssocCache::access_line)
    /// does for the same line.  On a miss the line is allocated
    /// (write-allocate), evicting — and recording — the LRU way of a full
    /// set.
    #[inline(always)]
    pub fn access_compiled(&mut self, set: u32, tag: u32, is_write: bool) -> bool {
        debug_assert_eq!(tag & DIRTY_BIT, 0, "tag must be pre-shifted (line_tag)");
        let base = self.set_base(set);
        // MRU fast path: re-touches of the most recent line are the most
        // common probe, and neither reorder the set nor ripple anything.
        let front = self.tags[base];
        if front ^ tag <= DIRTY_BIT {
            self.tags[base] = front | is_write as u32;
            self.stats.record(true, is_write);
            return true;
        }
        match self.ripple_insert(base, tag, tag | is_write as u32) {
            Some(old) => {
                // Fold the hit way's dirty bit forward.
                self.tags[base] |= old & DIRTY_BIT;
                self.stats.record(true, is_write);
                true
            }
            None => {
                self.stats.record(false, is_write);
                false
            }
        }
    }

    /// Insert a line (e.g. a fill returning from the next level) without
    /// recording a probe in the statistics.  If the line is already
    /// present its LRU position and dirty bit are refreshed; otherwise it
    /// is allocated, evicting the LRU way if necessary (the eviction *is*
    /// recorded).
    #[inline(always)]
    pub fn fill_compiled(&mut self, set: u32, tag: u32, dirty: bool) {
        debug_assert_eq!(tag & DIRTY_BIT, 0, "tag must be pre-shifted (line_tag)");
        let base = self.set_base(set);
        let front = self.tags[base];
        if front ^ tag <= DIRTY_BIT {
            self.tags[base] = front | dirty as u32;
            return;
        }
        if let Some(old) = self.ripple_insert(base, tag, tag | dirty as u32) {
            self.tags[base] |= old & DIRTY_BIT;
        }
    }

    /// Record a *filtered* read hit: the caller has proved (e.g. via a
    /// one-entry MRU filter) that the line is at the MRU position of its
    /// set, so probing would be a state no-op.  Only the statistics move,
    /// exactly as [`CompiledCache::access_compiled`] would move them for
    /// that hit.
    #[inline]
    pub fn record_mru_read_hit(&mut self) {
        self.stats.record(true, false);
    }

    /// Whether a line is currently resident (does not update LRU state or
    /// statistics).
    #[inline]
    pub fn contains_compiled(&self, set: u32, tag: u32) -> bool {
        self.find_pos(self.set_base(set), tag).is_some()
    }

    /// Invalidate a line if present; returns `true` if it was present and
    /// dirty.  Keeps the rest of the recency order and the
    /// empties-as-suffix invariant.
    #[inline(always)]
    pub fn invalidate_compiled(&mut self, set: u32, tag: u32) -> bool {
        debug_assert_eq!(tag & DIRTY_BIT, 0, "tag must be pre-shifted (line_tag)");
        let base = self.set_base(set);
        match self.find_pos(base, tag) {
            Some(pos) => {
                let was_dirty = self.tags[base + pos] & DIRTY_BIT != 0;
                let last = base + self.assoc - 1;
                self.tags.copy_within(base + pos + 1..last + 1, base + pos);
                self.tags[last] = INVALID_TAG;
                was_dirty
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::setassoc::SetAssocCache;
    use ccs_dag::AccessKind;

    /// 2 sets × 2 ways, mirroring `setassoc::tests::small_cache` (4 lines
    /// of 64 B): line id `i` stands for line address `i * 64`, so id and
    /// set mappings coincide with the address-keyed tests.
    fn small() -> CompiledCache {
        CompiledCache::new(2, 2)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access_compiled(0, line_tag(0), false));
        assert!(c.access_compiled(0, line_tag(0), false));
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        c.access_compiled(0, line_tag(0), false);
        c.access_compiled(0, line_tag(2), false);
        // Touch id 0 again so id 2 becomes LRU.
        c.access_compiled(0, line_tag(0), false);
        assert!(!c.access_compiled(0, line_tag(4), false));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.contains_compiled(0, line_tag(0)));
        assert!(!c.contains_compiled(0, line_tag(2)));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = small();
        c.access_compiled(0, line_tag(0), true);
        c.access_compiled(0, line_tag(2), false);
        c.access_compiled(0, line_tag(2), false);
        // Evict id 0 (LRU, dirty).
        c.access_compiled(0, line_tag(4), false);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn fill_does_not_count_as_probe() {
        let mut c = small();
        c.fill_compiled(1, line_tag(1), false);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains_compiled(1, line_tag(1)));
        assert!(c.access_compiled(1, line_tag(1), false));
        // Filling a full set evicts and records the eviction.
        c.fill_compiled(1, line_tag(3), true);
        c.fill_compiled(1, line_tag(5), false);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 0, "clean LRU way evicted first");
    }

    #[test]
    fn invalidate_removes_line_and_reports_dirty() {
        let mut c = small();
        c.access_compiled(0, line_tag(0), true);
        assert!(c.invalidate_compiled(0, line_tag(0)));
        assert!(!c.contains_compiled(0, line_tag(0)));
        assert!(!c.invalidate_compiled(0, line_tag(0)));
        assert!(!c.access_compiled(0, line_tag(0), false));
    }

    #[test]
    fn flush_and_residency() {
        let mut c = small();
        c.access_compiled(0, line_tag(0), false);
        c.access_compiled(1, line_tag(1), false);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(c.heap_bytes() >= 4 * 4);
    }

    #[test]
    fn mru_read_hit_moves_only_stats() {
        let mut c = small();
        c.access_compiled(0, line_tag(0), false);
        let before = *c.stats();
        c.record_mru_read_hit();
        assert_eq!(c.stats().hits, before.hits + 1);
        assert_eq!(c.stats().reads, before.reads + 1);
        assert_eq!(c.stats().misses, before.misses);
    }

    /// Statistics lockstep with the address-keyed model: a mixed random
    /// probe/fill/invalidate sequence over a shared geometry must leave
    /// identical counters in both caches.
    #[test]
    fn lockstep_with_setassoc() {
        let cfg = CacheConfig::new(8 * 64, 64, 4, 1); // 2 sets, 4-way
        let mut addr_keyed = SetAssocCache::new(cfg);
        let mut compiled = CompiledCache::new(cfg.num_sets(), cfg.associativity);
        // Line id i <-> line address i * 64; set = i % 2.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..4096 {
            // xorshift64* keeps the sequence deterministic and shim-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let id = (r % 13) as u32;
            let line = id as u64 * 64;
            let (set, tag) = ((id % 2), line_tag(id));
            match (r >> 32) % 4 {
                0 => {
                    let kind = if r & 1 == 0 {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    let hit = addr_keyed.access_line(line, kind).hit;
                    assert_eq!(compiled.access_compiled(set, tag, r & 1 != 0), hit);
                }
                1 => {
                    addr_keyed.fill_line(line, r & 2 != 0);
                    compiled.fill_compiled(set, tag, r & 2 != 0);
                }
                2 => {
                    let dirty = addr_keyed.invalidate_line(line);
                    assert_eq!(compiled.invalidate_compiled(set, tag), dirty);
                }
                _ => {
                    assert_eq!(
                        addr_keyed.contains_line(line),
                        compiled.contains_compiled(set, tag)
                    );
                }
            }
        }
        assert_eq!(*addr_keyed.stats(), *compiled.stats());
        assert_eq!(addr_keyed.resident_lines(), compiled.resident_lines());
    }
}
