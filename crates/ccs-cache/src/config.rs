//! Cache geometry and timing configuration.

/// Geometry and timing of a single cache (L1 or L2).
///
/// Mirrors the parameters of Table 1 / Table 2 / Table 3 of the paper:
/// capacity, line size, associativity and hit latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Cache line size in bytes (power of two).
    pub line_size: u64,
    /// Associativity (ways per set).  Use [`CacheConfig::fully_associative`]
    /// for a fully-associative cache.
    pub associativity: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Construct and validate a configuration.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// capacity not divisible into an integral number of sets, ...).
    pub fn new(capacity: u64, line_size: u64, associativity: u32, hit_latency: u64) -> Self {
        let c = CacheConfig {
            capacity,
            line_size,
            associativity,
            hit_latency,
        };
        c.validate().expect("invalid cache configuration");
        c
    }

    /// The private L1 configuration common to every CMP configuration in the
    /// paper (Table 1): 64 KB, 128-byte lines, 4-way, 1-cycle hit latency.
    pub fn paper_l1() -> Self {
        CacheConfig::new(64 * 1024, 128, 4, 1)
    }

    /// A fully-associative configuration (single set).
    pub fn fully_associative(capacity: u64, line_size: u64, hit_latency: u64) -> Self {
        let lines = (capacity / line_size).max(1) as u32;
        CacheConfig::new(capacity, line_size, lines, hit_latency)
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        // Minimum 4: the cache models fold the dirty flag into tag bit 0
        // and mark empty ways with the all-ones sentinel, which is
        // collision-free exactly when aligned line addresses have (at
        // least) the two low bits clear (see `ccs-cache::setassoc`).
        if !self.line_size.is_power_of_two() || self.line_size < 4 {
            return Err(format!(
                "line size {} must be a power of two >= 4",
                self.line_size
            ));
        }
        if self.capacity == 0 || !self.capacity.is_multiple_of(self.line_size) {
            return Err(format!(
                "capacity {} must be a non-zero multiple of the line size {}",
                self.capacity, self.line_size
            ));
        }
        if self.associativity == 0 {
            return Err("associativity must be positive".into());
        }
        let lines = self.capacity / self.line_size;
        if !lines.is_multiple_of(self.associativity as u64) {
            return Err(format!(
                "{} lines cannot be divided into {}-way sets",
                lines, self.associativity
            ));
        }
        Ok(())
    }

    /// Number of cache lines.
    #[inline]
    pub fn num_lines(&self) -> u64 {
        self.capacity / self.line_size
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> u64 {
        self.num_lines() / self.associativity as u64
    }

    /// The line-aligned address containing `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_size - 1)
    }

    /// The set index of `addr`.
    #[inline]
    pub fn set_of(&self, addr: u64) -> u64 {
        (addr / self.line_size) % self.num_sets()
    }
}

/// Timing of the off-chip main memory (Table 1): a fixed access latency plus
/// a service rate that bounds off-chip bandwidth — the memory controller
/// accepts at most one request every `service_interval` cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Latency of a single access in cycles.
    pub latency: u64,
    /// Minimum number of cycles between the start of two consecutive requests.
    pub service_interval: u64,
}

impl MemoryConfig {
    /// The paper's main-memory parameters: 300-cycle latency, one request per
    /// 30 cycles.
    pub fn paper_default() -> Self {
        MemoryConfig {
            latency: 300,
            service_interval: 30,
        }
    }

    /// Override the latency (used by the Fig. 5 sensitivity sweep).
    pub fn with_latency(mut self, latency: u64) -> Self {
        self.latency = latency;
        self
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let l1 = CacheConfig::paper_l1();
        assert_eq!(l1.num_lines(), 512);
        assert_eq!(l1.num_sets(), 128);
        assert_eq!(l1.hit_latency, 1);
        assert!(l1.validate().is_ok());
    }

    #[test]
    fn line_and_set_mapping() {
        let c = CacheConfig::new(1024, 64, 2, 1);
        assert_eq!(c.num_sets(), 8);
        assert_eq!(c.line_of(130), 128);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(64), 1);
        assert_eq!(c.set_of(64 * 8), 0); // wraps around the sets
    }

    #[test]
    fn fully_associative_has_one_set() {
        let c = CacheConfig::fully_associative(8192, 128, 10);
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.associativity as u64, c.num_lines());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CacheConfig {
            capacity: 1000,
            line_size: 128,
            associativity: 4,
            hit_latency: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            capacity: 1024,
            line_size: 100,
            associativity: 4,
            hit_latency: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            capacity: 1024,
            line_size: 128,
            associativity: 3,
            hit_latency: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            capacity: 1024,
            line_size: 128,
            associativity: 0,
            hit_latency: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn memory_defaults_match_table1() {
        let m = MemoryConfig::paper_default();
        assert_eq!(m.latency, 300);
        assert_eq!(m.service_interval, 30);
        assert_eq!(MemoryConfig::default(), m);
        assert_eq!(m.with_latency(700).latency, 700);
    }
}
