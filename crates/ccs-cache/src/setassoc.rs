//! Set-associative cache with true-LRU replacement.
//!
//! This is the cache model used for the private L1s and the shared L2 of the
//! CMP simulator, and for the `SetAssoc` working-set profiling baseline of
//! Section 6.1.

use crate::config::CacheConfig;
use crate::stats::CacheStats;
use ccs_dag::{AccessKind, MemRef};

/// Result of probing the cache with one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Line address evicted to make room for the fill (misses only).
    pub evicted: Option<u64>,
    /// Whether the evicted line was dirty (requires a write-back).
    pub writeback: bool,
}

impl AccessOutcome {
    fn hit() -> Self {
        AccessOutcome {
            hit: true,
            evicted: None,
            writeback: false,
        }
    }
}

/// Tag stored in empty ways.  Line addresses are at least 4-aligned
/// (enforced by [`CacheConfig::validate`]), so `tag ^ line` against this
/// all-ones sentinel always keeps bit 1 set and can never look like a
/// match even with the dirty bit folded into bit 0; the access paths
/// `debug_assert` the alignment anyway.
const INVALID_LINE: u64 = u64::MAX;

/// Dirty flag, folded into bit 0 of the tag (free because lines are at
/// least 4-aligned).  One array to scan and rotate instead of two.
const DIRTY_BIT: u64 = 1;

/// A set-associative cache with per-set true-LRU replacement and write-back,
/// write-allocate semantics.
///
/// This sits on the simulator's per-reference hot path, so both layout and
/// algorithm are tuned for it:
///
/// * the line tags of a set are `associativity` contiguous `u64`s in a
///   single flat array (no per-set allocations), and the set index is a
///   shift/mask when the set count is a power of two — no divisions;
/// * recency is encoded **positionally**: each set is kept in MRU→LRU
///   order (empty ways, tagged `INVALID_LINE`, form the suffix).  A touch
///   rotates the way to the front; the victim is always the *last* way.
///   This is exactly true-LRU — the per-set order is the classic LRU stack
///   — but needs no timestamps, no clock, and no argmin scan on misses.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// Tag per way (`line | DIRTY_BIT`), `num_sets × assoc` flat; each set
    /// ordered MRU→LRU with `INVALID_LINE` (empty) ways as the suffix.
    lines: Vec<u64>,
    stats: CacheStats,
    assoc: usize,
    /// `line_size.trailing_zeros()`: line address → line number.
    line_shift: u32,
    /// `num_sets - 1` when the set count is a power of two.
    set_mask: Option<u64>,
    num_sets: u64,
}

impl SetAssocCache {
    /// Create an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let num_sets = config.num_sets();
        let assoc = config.associativity as usize;
        let ways = (num_sets * assoc as u64) as usize;
        SetAssocCache {
            config,
            lines: vec![INVALID_LINE; ways],
            stats: CacheStats::default(),
            assoc,
            line_shift: config.line_size.trailing_zeros(),
            set_mask: num_sets.is_power_of_two().then(|| num_sets - 1),
            num_sets,
        }
    }

    /// Start index of the set holding `line` in the flat way arrays.
    #[inline]
    fn set_base(&self, line: u64) -> usize {
        let line_no = line >> self.line_shift;
        let set = match self.set_mask {
            Some(mask) => line_no & mask,
            None => line_no % self.num_sets,
        };
        set as usize * self.assoc
    }

    /// Position of `line` within its set (0 = MRU), if resident.  The MRU
    /// way is checked first — re-touches of the most recent line (fills,
    /// multi-line ops) are the most common probe by far.  The remainder is
    /// scanned without early exit so LLVM can vectorise the tag compares —
    /// the scaled-down design points routinely run 16-way sets where this
    /// loop is the hottest code in the simulator.
    #[inline]
    fn find_pos(&self, base: usize, line: u64) -> Option<usize> {
        let set = &self.lines[base..base + self.assoc];
        // `tag ^ line` is 0 or DIRTY_BIT on a match (line has bit 0
        // clear) and > DIRTY_BIT on a mismatch: two distinct aligned
        // lines differ above bit 1, and the empty sentinel keeps bit 1
        // set against any 4-aligned line.
        if set[0] ^ line <= DIRTY_BIT {
            return Some(0);
        }
        let mut found = usize::MAX;
        for (i, &tag) in set.iter().enumerate().skip(1) {
            if tag ^ line <= DIRTY_BIT {
                found = i;
            }
        }
        (found != usize::MAX).then_some(found)
    }

    /// Move the way at set position `pos` to the MRU front, shifting the
    /// more-recent ways down one place (a single forward memmove).
    #[inline]
    fn touch(&mut self, base: usize, pos: usize) {
        let tag = self.lines[base + pos];
        self.lines.copy_within(base..base + pos, base + 1);
        self.lines[base] = tag;
    }

    /// Allocate `line` at the MRU front of its set, pushing every other way
    /// down and dropping the LRU (last) way — an empty way if the set has
    /// one (empties are the suffix of the order), the true-LRU victim
    /// otherwise.  Returns the eviction outcome.
    #[inline]
    fn allocate_front(&mut self, base: usize, line: u64, dirty: bool) -> AccessOutcome {
        let last = base + self.assoc - 1;
        let evicted = self.lines[last];
        self.lines.copy_within(base..last, base + 1);
        self.lines[base] = line | (dirty as u64);
        let mut outcome = AccessOutcome {
            hit: false,
            evicted: None,
            writeback: false,
        };
        if evicted != INVALID_LINE {
            let evicted_dirty = evicted & DIRTY_BIT != 0;
            self.stats.record_eviction(evicted_dirty);
            outcome.evicted = Some(evicted & !DIRTY_BIT);
            outcome.writeback = evicted_dirty;
        }
        outcome
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (the contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Flush the contents (cold cache) without touching statistics.
    pub fn flush(&mut self) {
        self.lines.fill(INVALID_LINE);
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|&&t| t != INVALID_LINE).count()
    }

    /// Probe the cache with the line containing `addr`.
    pub fn access_addr(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        let line = self.config.line_of(addr);
        self.access_line(line, kind)
    }

    /// Probe the cache with an already line-aligned address.
    #[inline]
    pub fn access_line(&mut self, line: u64, kind: AccessKind) -> AccessOutcome {
        debug_assert_eq!(
            line % self.config.line_size,
            0,
            "address must be line-aligned"
        );
        debug_assert_ne!(line, INVALID_LINE, "line collides with the empty tag");
        let is_write = kind.is_write();
        let base = self.set_base(line);

        if let Some(pos) = self.find_pos(base, line) {
            self.touch(base, pos);
            self.lines[base] |= is_write as u64;
            self.stats.record(true, is_write);
            AccessOutcome::hit()
        } else {
            // Miss: allocate, evicting the LRU way if the set is full.
            self.stats.record(false, is_write);
            self.allocate_front(base, line, is_write)
        }
    }

    /// Probe the cache with every line touched by a memory reference,
    /// returning the number of misses.
    pub fn access_ref(&mut self, mem: &MemRef) -> u32 {
        let mut misses = 0;
        for line in mem.lines(self.config.line_size) {
            if !self.access_line(line, mem.kind).hit {
                misses += 1;
            }
        }
        misses
    }

    /// Record a *filtered* read hit: the caller has proved (e.g. via a
    /// one-entry MRU filter in front of the cache) that the line is at the
    /// MRU position of its set, so probing would be a state no-op — a read
    /// hit on the MRU way neither reorders the set nor changes the dirty
    /// bit.  Only the statistics move, exactly as [`access_line`] would
    /// move them for that hit.
    ///
    /// [`access_line`]: SetAssocCache::access_line
    #[inline]
    pub fn record_mru_read_hit(&mut self) {
        self.stats.record(true, false);
    }

    /// Insert a line (e.g. a fill returning from the next level) without
    /// recording a probe in the statistics.  If the line is already present
    /// its LRU position and dirty bit are refreshed; otherwise it is
    /// allocated, evicting the LRU way if necessary (the eviction *is*
    /// recorded).  Returns the eviction outcome.
    #[inline]
    pub fn fill_line(&mut self, line: u64, dirty: bool) -> AccessOutcome {
        debug_assert_eq!(
            line % self.config.line_size,
            0,
            "address must be line-aligned"
        );
        debug_assert_ne!(line, INVALID_LINE, "line collides with the empty tag");
        let base = self.set_base(line);
        if let Some(pos) = self.find_pos(base, line) {
            self.touch(base, pos);
            self.lines[base] |= dirty as u64;
            AccessOutcome::hit()
        } else {
            self.allocate_front(base, line, dirty)
        }
    }

    /// Whether a line is currently resident (does not update LRU state or
    /// statistics).
    #[inline]
    pub fn contains_line(&self, line: u64) -> bool {
        self.find_pos(self.set_base(line), line).is_some()
    }

    /// Invalidate a line if present; returns `true` if it was present and
    /// dirty (i.e. an invalidation write-back would be needed).
    #[inline]
    pub fn invalidate_line(&mut self, line: u64) -> bool {
        let base = self.set_base(line);
        match self.find_pos(base, line) {
            Some(pos) => {
                let was_dirty = self.lines[base + pos] & DIRTY_BIT != 0;
                // Remove the way, keeping the rest of the recency order and
                // restoring the empties-as-suffix invariant.
                let last = base + self.assoc - 1;
                self.lines.copy_within(base + pos + 1..last + 1, base + pos);
                self.lines[last] = INVALID_LINE;
                was_dirty
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 lines of 64 B, 2-way => 2 sets.
        SetAssocCache::new(CacheConfig::new(256, 64, 2, 1))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        assert!(!c.access_addr(0, AccessKind::Read).hit);
        assert!(
            c.access_addr(32, AccessKind::Read).hit,
            "same line must hit"
        );
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache();
        // Lines 0, 128, 256 all map to set 0 (set = (addr/64) % 2).
        c.access_line(0, AccessKind::Read);
        c.access_line(128, AccessKind::Read);
        // Touch 0 again so 128 becomes LRU.
        c.access_line(0, AccessKind::Read);
        let out = c.access_line(256, AccessKind::Read);
        assert!(!out.hit);
        assert_eq!(out.evicted, Some(128));
        assert!(c.contains_line(0));
        assert!(!c.contains_line(128));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = small_cache();
        c.access_line(0, AccessKind::Write);
        c.access_line(128, AccessKind::Read);
        c.access_line(128, AccessKind::Read);
        // Evict line 0 (LRU, dirty).
        let out = c.access_line(256, AccessKind::Read);
        assert_eq!(out.evicted, Some(0));
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small_cache();
        c.access_line(0, AccessKind::Read); // set 0
        c.access_line(64, AccessKind::Read); // set 1
        c.access_line(128, AccessKind::Read); // set 0
        c.access_line(192, AccessKind::Read); // set 1
                                              // All four lines fit: no evictions.
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn access_ref_splits_lines() {
        let mut c = small_cache();
        let r = MemRef::read(60, 10); // straddles lines 0 and 64
        assert_eq!(c.access_ref(&r), 2);
        assert_eq!(c.access_ref(&r), 0);
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        c.access_line(0, AccessKind::Write);
        assert!(c.invalidate_line(0), "dirty line reported on invalidation");
        assert!(!c.contains_line(0));
        assert!(!c.invalidate_line(0));
        assert!(!c.access_line(0, AccessKind::Read).hit);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small_cache();
        c.access_line(0, AccessKind::Read);
        c.access_line(64, AccessKind::Read);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access_line(0, AccessKind::Read).hit);
    }

    #[test]
    fn fill_line_does_not_count_as_probe() {
        let mut c = small_cache();
        c.fill_line(0, false);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains_line(0));
        assert!(c.access_line(0, AccessKind::Read).hit);
        // Filling a full set evicts and records the eviction.
        c.fill_line(128, true);
        let out = c.fill_line(256, false);
        assert!(out.evicted.is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn fully_associative_behaves_as_lru() {
        let cfg = CacheConfig::fully_associative(4 * 64, 64, 1);
        let mut c = SetAssocCache::new(cfg);
        for i in 0..4u64 {
            c.access_line(i * 64, AccessKind::Read);
        }
        // Re-touch line 0, then bring in a 5th line: victim must be line 1.
        c.access_line(0, AccessKind::Read);
        let out = c.access_line(4 * 64, AccessKind::Read);
        assert_eq!(out.evicted, Some(64));
    }
}
