//! Set-associative cache with true-LRU replacement.
//!
//! This is the cache model used for the private L1s and the shared L2 of the
//! CMP simulator, and for the `SetAssoc` working-set profiling baseline of
//! Section 6.1.

use crate::config::CacheConfig;
use crate::stats::CacheStats;
use ccs_dag::{AccessKind, MemRef};

/// Result of probing the cache with one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Line address evicted to make room for the fill (misses only).
    pub evicted: Option<u64>,
    /// Whether the evicted line was dirty (requires a write-back).
    pub writeback: bool,
}

impl AccessOutcome {
    fn hit() -> Self {
        AccessOutcome {
            hit: true,
            evicted: None,
            writeback: false,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    line: u64,
    dirty: bool,
    /// Monotonic timestamp of the last access; smallest = LRU victim.
    last_used: u64,
}

/// A set-associative cache with per-set true-LRU replacement and write-back,
/// write-allocate semantics.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    stats: CacheStats,
    clock: u64,
}

impl SetAssocCache {
    /// Create an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let sets =
            vec![Vec::with_capacity(config.associativity as usize); config.num_sets() as usize];
        SetAssocCache {
            config,
            sets,
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (the contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Flush the contents (cold cache) without touching statistics.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Probe the cache with the line containing `addr`.
    pub fn access_addr(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        let line = self.config.line_of(addr);
        self.access_line(line, kind)
    }

    /// Probe the cache with an already line-aligned address.
    pub fn access_line(&mut self, line: u64, kind: AccessKind) -> AccessOutcome {
        debug_assert_eq!(
            line % self.config.line_size,
            0,
            "address must be line-aligned"
        );
        self.clock += 1;
        let clock = self.clock;
        let is_write = kind.is_write();
        let set_idx = self.config.set_of(line) as usize;
        let assoc = self.config.associativity as usize;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_used = clock;
            way.dirty |= is_write;
            self.stats.record(true, is_write);
            return AccessOutcome::hit();
        }

        // Miss: allocate, evicting the LRU way if the set is full.
        self.stats.record(false, is_write);
        let mut outcome = AccessOutcome {
            hit: false,
            evicted: None,
            writeback: false,
        };
        if set.len() == assoc {
            let victim_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = set.swap_remove(victim_idx);
            self.stats.record_eviction(victim.dirty);
            outcome.evicted = Some(victim.line);
            outcome.writeback = victim.dirty;
        }
        set.push(Way {
            line,
            dirty: is_write,
            last_used: clock,
        });
        outcome
    }

    /// Probe the cache with every line touched by a memory reference,
    /// returning the number of misses.
    pub fn access_ref(&mut self, mem: &MemRef) -> u32 {
        let mut misses = 0;
        for line in mem.lines(self.config.line_size) {
            if !self.access_line(line, mem.kind).hit {
                misses += 1;
            }
        }
        misses
    }

    /// Insert a line (e.g. a fill returning from the next level) without
    /// recording a probe in the statistics.  If the line is already present
    /// its LRU position and dirty bit are refreshed; otherwise it is
    /// allocated, evicting the LRU way if necessary (the eviction *is*
    /// recorded).  Returns the eviction outcome.
    pub fn fill_line(&mut self, line: u64, dirty: bool) -> AccessOutcome {
        debug_assert_eq!(
            line % self.config.line_size,
            0,
            "address must be line-aligned"
        );
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.config.set_of(line) as usize;
        let assoc = self.config.associativity as usize;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_used = clock;
            way.dirty |= dirty;
            return AccessOutcome::hit();
        }
        let mut outcome = AccessOutcome {
            hit: false,
            evicted: None,
            writeback: false,
        };
        if set.len() == assoc {
            let victim_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = set.swap_remove(victim_idx);
            self.stats.record_eviction(victim.dirty);
            outcome.evicted = Some(victim.line);
            outcome.writeback = victim.dirty;
        }
        set.push(Way {
            line,
            dirty,
            last_used: clock,
        });
        outcome
    }

    /// Whether a line is currently resident (does not update LRU state or
    /// statistics).
    pub fn contains_line(&self, line: u64) -> bool {
        let set_idx = self.config.set_of(line) as usize;
        self.sets[set_idx].iter().any(|w| w.line == line)
    }

    /// Invalidate a line if present; returns `true` if it was present and
    /// dirty (i.e. an invalidation write-back would be needed).
    pub fn invalidate_line(&mut self, line: u64) -> bool {
        let set_idx = self.config.set_of(line) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.line == line) {
            let way = set.swap_remove(pos);
            way.dirty
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 lines of 64 B, 2-way => 2 sets.
        SetAssocCache::new(CacheConfig::new(256, 64, 2, 1))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        assert!(!c.access_addr(0, AccessKind::Read).hit);
        assert!(
            c.access_addr(32, AccessKind::Read).hit,
            "same line must hit"
        );
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache();
        // Lines 0, 128, 256 all map to set 0 (set = (addr/64) % 2).
        c.access_line(0, AccessKind::Read);
        c.access_line(128, AccessKind::Read);
        // Touch 0 again so 128 becomes LRU.
        c.access_line(0, AccessKind::Read);
        let out = c.access_line(256, AccessKind::Read);
        assert!(!out.hit);
        assert_eq!(out.evicted, Some(128));
        assert!(c.contains_line(0));
        assert!(!c.contains_line(128));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = small_cache();
        c.access_line(0, AccessKind::Write);
        c.access_line(128, AccessKind::Read);
        c.access_line(128, AccessKind::Read);
        // Evict line 0 (LRU, dirty).
        let out = c.access_line(256, AccessKind::Read);
        assert_eq!(out.evicted, Some(0));
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small_cache();
        c.access_line(0, AccessKind::Read); // set 0
        c.access_line(64, AccessKind::Read); // set 1
        c.access_line(128, AccessKind::Read); // set 0
        c.access_line(192, AccessKind::Read); // set 1
                                              // All four lines fit: no evictions.
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn access_ref_splits_lines() {
        let mut c = small_cache();
        let r = MemRef::read(60, 10); // straddles lines 0 and 64
        assert_eq!(c.access_ref(&r), 2);
        assert_eq!(c.access_ref(&r), 0);
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        c.access_line(0, AccessKind::Write);
        assert!(c.invalidate_line(0), "dirty line reported on invalidation");
        assert!(!c.contains_line(0));
        assert!(!c.invalidate_line(0));
        assert!(!c.access_line(0, AccessKind::Read).hit);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small_cache();
        c.access_line(0, AccessKind::Read);
        c.access_line(64, AccessKind::Read);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access_line(0, AccessKind::Read).hit);
    }

    #[test]
    fn fill_line_does_not_count_as_probe() {
        let mut c = small_cache();
        c.fill_line(0, false);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains_line(0));
        assert!(c.access_line(0, AccessKind::Read).hit);
        // Filling a full set evicts and records the eviction.
        c.fill_line(128, true);
        let out = c.fill_line(256, false);
        assert!(out.evicted.is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn fully_associative_behaves_as_lru() {
        let cfg = CacheConfig::fully_associative(4 * 64, 64, 1);
        let mut c = SetAssocCache::new(cfg);
        for i in 0..4u64 {
            c.access_line(i * 64, AccessKind::Read);
        }
        // Re-touch line 0, then bring in a 5th line: victim must be line 1.
        c.access_line(0, AccessKind::Read);
        let out = c.access_line(4 * 64, AccessKind::Read);
        assert_eq!(out.evicted, Some(64));
    }
}
