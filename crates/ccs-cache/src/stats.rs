//! Access statistics shared by all cache models.

/// Hit/miss counters maintained by every cache model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total line probes.
    pub accesses: u64,
    /// Probes that hit.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Read probes.
    pub reads: u64,
    /// Write probes.
    pub writes: u64,
    /// Lines evicted to make room for a fill.
    pub evictions: u64,
    /// Evictions of dirty lines (write-backs to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Record a probe outcome.
    #[inline]
    pub fn record(&mut self, hit: bool, is_write: bool) {
        self.accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
    }

    /// Record an eviction.
    #[inline]
    pub fn record_eviction(&mut self, dirty: bool) {
        self.evictions += 1;
        if dirty {
            self.writebacks += 1;
        }
    }

    /// Miss ratio (0 when there were no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio (0 when there were no accesses).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Misses per 1000 of the given instruction count — the paper's main
    /// cache-performance metric ("L2 misses per 1000 instructions").
    pub fn misses_per_kilo_instruction(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.reads += other.reads;
        self.writes += other.writes;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_ratios() {
        let mut s = CacheStats::default();
        s.record(true, false);
        s.record(false, true);
        s.record(false, false);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.misses_per_kilo_instruction(0), 0.0);
    }

    #[test]
    fn mpki_metric() {
        let mut s = CacheStats::default();
        for _ in 0..5 {
            s.record(false, false);
        }
        assert!((s.misses_per_kilo_instruction(10_000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CacheStats::default();
        a.record(true, false);
        a.record_eviction(true);
        let mut b = CacheStats::default();
        b.record(false, true);
        b.record_eviction(false);
        a.merge(&b);
        assert_eq!(a.accesses, 2);
        assert_eq!(a.evictions, 2);
        assert_eq!(a.writebacks, 1);
        a.reset();
        assert_eq!(a, CacheStats::default());
    }
}
