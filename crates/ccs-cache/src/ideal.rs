//! Ideal (fully-associative, true-LRU) cache model.
//!
//! The analytical results of the paper (Theorem 3.1 and the Mergesort miss
//! model of Section 3) are stated for *ideal* caches.  This model is used by
//! the theory-validation tests and by the working-set profiler, where a single
//! LRU stack simultaneously yields miss counts for every capacity.

use crate::stack::{OrderStatStack, StackDistanceModel};
use crate::stats::CacheStats;
use ccs_dag::{AccessKind, MemRef};

/// A fully-associative LRU cache of a fixed capacity (in lines).
///
/// Implemented on top of the `O(log n)` LRU stack: an access hits exactly when
/// the line's stack distance is smaller than the capacity, so no explicit
/// eviction bookkeeping is required.
#[derive(Debug)]
pub struct IdealCache {
    capacity_lines: u64,
    line_size: u64,
    stack: OrderStatStack,
    stats: CacheStats,
}

impl IdealCache {
    /// An ideal cache holding `capacity_lines` lines of `line_size` bytes.
    pub fn new(capacity_lines: u64, line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(capacity_lines > 0, "capacity must be positive");
        IdealCache {
            capacity_lines,
            line_size,
            stack: OrderStatStack::new(),
            stats: CacheStats::default(),
        }
    }

    /// An ideal cache of `capacity_bytes` bytes.
    pub fn with_bytes(capacity_bytes: u64, line_size: u64) -> Self {
        Self::new((capacity_bytes / line_size).max(1), line_size)
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> u64 {
        self.capacity_lines
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset the statistics, keeping the contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Access the line containing `addr`; returns `true` on a hit.
    pub fn access_addr(&mut self, addr: u64, kind: AccessKind) -> bool {
        self.access_line(addr & !(self.line_size - 1), kind)
    }

    /// Access an already line-aligned address; returns `true` on a hit.
    pub fn access_line(&mut self, line: u64, kind: AccessKind) -> bool {
        let hit = match self.stack.access(line) {
            Some(d) => d < self.capacity_lines,
            None => false,
        };
        self.stats.record(hit, kind.is_write());
        hit
    }

    /// Access every line touched by a reference; returns the number of misses.
    pub fn access_ref(&mut self, mem: &MemRef) -> u32 {
        let mut misses = 0;
        for line in mem.lines(self.line_size) {
            if !self.access_line(line, mem.kind) {
                misses += 1;
            }
        }
        misses
    }

    /// Number of distinct lines ever touched (the total footprint, which may
    /// exceed the capacity).
    pub fn footprint_lines(&self) -> usize {
        self.stack.num_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_within_capacity() {
        let mut c = IdealCache::new(4, 64);
        for l in 0..4u64 {
            assert!(!c.access_line(l * 64, AccessKind::Read));
        }
        for l in 0..4u64 {
            assert!(c.access_line(l * 64, AccessKind::Read));
        }
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.stats().hits, 4);
    }

    #[test]
    fn misses_beyond_capacity() {
        let mut c = IdealCache::new(4, 64);
        // Cyclic scan over 5 lines with LRU never hits after the cold pass.
        for _ in 0..3 {
            for l in 0..5u64 {
                assert!(!c.access_line(l * 64, AccessKind::Read));
            }
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.footprint_lines(), 5);
    }

    #[test]
    fn with_bytes_computes_lines() {
        let c = IdealCache::with_bytes(8192, 128);
        assert_eq!(c.capacity_lines(), 64);
        assert_eq!(c.line_size(), 128);
    }

    #[test]
    fn access_addr_aligns() {
        let mut c = IdealCache::new(2, 128);
        assert!(!c.access_addr(130, AccessKind::Read));
        assert!(c.access_addr(200, AccessKind::Write), "same line");
    }

    #[test]
    fn access_ref_counts_line_misses() {
        let mut c = IdealCache::new(16, 64);
        let r = MemRef::read(0, 256); // 4 lines
        assert_eq!(c.access_ref(&r), 4);
        assert_eq!(c.access_ref(&r), 0);
    }

    #[test]
    fn larger_cache_never_misses_more() {
        // Inclusion property of LRU: for the same trace, a larger ideal cache
        // can only have fewer (or equal) misses.
        let mut x: u64 = 7;
        let mut trace = Vec::new();
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            trace.push((x % 300) * 64);
        }
        let mut small = IdealCache::new(32, 64);
        let mut large = IdealCache::new(128, 64);
        for &a in &trace {
            small.access_line(a, AccessKind::Read);
            large.access_line(a, AccessKind::Read);
        }
        assert!(large.stats().misses <= small.stats().misses);
    }
}
