//! Property-based tests for the cache substrate.

use ccs_cache::{
    CacheConfig, FenwickStack, IdealCache, NaiveLruStack, OrderStatStack, SetAssocCache,
    StackDistanceModel,
};
use ccs_dag::AccessKind;
use proptest::prelude::*;

/// Generate a reference trace with a bounded number of distinct lines so that
/// reuse actually occurs.
fn trace_strategy(max_len: usize, distinct: u64) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..distinct, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The O(log n) stack-distance structures agree with the naive stack on
    /// arbitrary traces.
    #[test]
    fn stack_models_agree(trace in trace_strategy(400, 64)) {
        let mut naive = NaiveLruStack::new();
        let mut treap = OrderStatStack::new();
        let mut fen = FenwickStack::with_slot_capacity(32);
        for &line in &trace {
            let d0 = naive.access(line);
            let d1 = treap.access(line);
            let d2 = fen.access(line);
            prop_assert_eq!(d0, d1);
            prop_assert_eq!(d0, d2);
        }
        prop_assert_eq!(naive.num_lines(), treap.num_lines());
        prop_assert_eq!(naive.num_lines(), fen.num_lines());
    }

    /// An ideal cache of capacity K hits exactly when the naive stack distance
    /// is < K (the stack-distance characterisation of LRU).
    #[test]
    fn ideal_cache_matches_stack_distance(
        trace in trace_strategy(300, 48),
        capacity in 1u64..64,
    ) {
        let mut stack = NaiveLruStack::new();
        let mut cache = IdealCache::new(capacity, 64);
        for &line in &trace {
            let d = stack.access(line * 64);
            let hit = cache.access_line(line * 64, AccessKind::Read);
            let expect = matches!(d, Some(d) if d < capacity);
            prop_assert_eq!(hit, expect);
        }
    }

    /// LRU inclusion: for the same trace a larger ideal cache never misses
    /// more than a smaller one.
    #[test]
    fn ideal_cache_inclusion(trace in trace_strategy(300, 100)) {
        let mut c8 = IdealCache::new(8, 64);
        let mut c32 = IdealCache::new(32, 64);
        for &line in &trace {
            c8.access_line(line * 64, AccessKind::Read);
            c32.access_line(line * 64, AccessKind::Read);
        }
        prop_assert!(c32.stats().misses <= c8.stats().misses);
    }

    /// A fully-associative set-associative cache is equivalent to the ideal
    /// LRU cache of the same capacity.
    #[test]
    fn fully_assoc_setassoc_equals_ideal(trace in trace_strategy(300, 80)) {
        let lines = 16u64;
        let cfg = CacheConfig::fully_associative(lines * 64, 64, 1);
        let mut sa = SetAssocCache::new(cfg);
        let mut ideal = IdealCache::new(lines, 64);
        for &line in &trace {
            let h1 = sa.access_line(line * 64, AccessKind::Read).hit;
            let h2 = ideal.access_line(line * 64, AccessKind::Read);
            prop_assert_eq!(h1, h2);
        }
    }

    /// Set-associative cache invariants: hits + misses = accesses, the number
    /// of resident lines never exceeds the capacity, and every miss either
    /// fills an empty way or evicts exactly one line.
    #[test]
    fn setassoc_counters_consistent(
        trace in trace_strategy(400, 200),
        assoc_pow in 0u32..3,
        sets_pow in 0u32..3,
    ) {
        let assoc = 1 << assoc_pow;
        let sets = 1u64 << sets_pow;
        let cfg = CacheConfig::new(sets * assoc as u64 * 64, 64, assoc, 1);
        let mut c = SetAssocCache::new(cfg);
        let mut evictions = 0u64;
        for &line in &trace {
            let out = c.access_line(line * 64, AccessKind::Read);
            if out.evicted.is_some() {
                evictions += 1;
            }
            prop_assert!(c.resident_lines() as u64 <= cfg.num_lines());
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, trace.len() as u64);
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.evictions, evictions);
        prop_assert_eq!(
            s.misses,
            evictions + c.resident_lines() as u64
        );
    }

    /// Doubling associativity at fixed capacity never increases misses for
    /// these LRU caches when the trace has no conflict-free structure --
    /// weaker check: the fully associative cache never misses more than any
    /// set-associative cache of the same capacity.
    #[test]
    fn full_assoc_no_worse_than_set_assoc(trace in trace_strategy(300, 60)) {
        let capacity = 16 * 64u64;
        let sa_cfg = CacheConfig::new(capacity, 64, 2, 1);
        let fa_cfg = CacheConfig::fully_associative(capacity, 64, 1);
        let mut sa = SetAssocCache::new(sa_cfg);
        let mut fa = SetAssocCache::new(fa_cfg);
        for &line in &trace {
            sa.access_line(line * 64, AccessKind::Read);
            fa.access_line(line * 64, AccessKind::Read);
        }
        // Belady anomaly does not apply to LRU with full associativity vs
        // set-partitioned LRU *in general*, but for uniformly random traces
        // of this size it holds with overwhelming probability; treat a
        // violation larger than a small slack as a bug.
        prop_assert!(fa.stats().misses <= sa.stats().misses + trace.len() as u64 / 10);
    }
}

#[test]
fn treap_handles_large_footprints() {
    // One deterministic large-footprint run to exercise arena growth.
    let mut treap = OrderStatStack::with_capacity(1 << 16);
    let mut naive_misses = 0u64;
    for i in 0..200_000u64 {
        let line = (i * 2654435761) % 50_000;
        if treap.access(line).is_none() {
            naive_misses += 1;
        }
    }
    assert_eq!(naive_misses, treap.num_lines() as u64);
    assert_eq!(treap.num_lines(), 50_000);
}
